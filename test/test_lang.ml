(* Tests for lib/lang: AST utilities, metrics, renaming, printing. *)

open Lang
open Helpers

(* A hand-built reference program used across cases. *)
let sample : Ast.program =
  {
    precision = Ast.F64;
    params = [ Ast.P_fp "x"; Ast.P_fp_array ("arr", 4); Ast.P_int "n" ];
    body =
      [
        Ast.Decl { name = "t"; init = Ast.Bin (Ast.Mul, Ast.Var "x", Ast.Lit 0.5) };
        Ast.For
          {
            var = "i";
            bound = 4;
            body =
              [
                Ast.Assign
                  {
                    lhs = Ast.Lv_var "comp";
                    op = Ast.Add_eq;
                    rhs =
                      Ast.Bin
                        (Ast.Add,
                         Ast.Index ("arr", Ast.Var "i"),
                         Ast.Call (Ast.Sin, [ Ast.Var "t" ]));
                  };
              ];
          };
        Ast.If
          {
            lhs = Ast.Var "comp";
            cmp = Ast.Gt;
            rhs = Ast.Lit 1.0;
            body =
              [ Ast.Assign
                  { lhs = Ast.Lv_var "comp"; op = Ast.Mul_eq; rhs = Ast.Var "x" } ];
          };
      ];
  }

(* Random programs via the Varity generator (valid by construction). *)
let arbitrary_program =
  QCheck.make
    ~print:(fun p -> Pp.to_c p)
    (QCheck.Gen.map
       (fun seed -> Gen.Varity.generate (Util.Rng.of_int seed))
       QCheck.Gen.int)

(* ------------------------------------------------------------------ *)
(* math_fn metadata *)

let test_math_fn_names_roundtrip () =
  Array.iter
    (fun fn ->
      check_bool "name roundtrips" true
        (Ast.math_fn_of_name (Ast.math_fn_name fn) = Some fn))
    Ast.all_math_fns

let test_math_fn_arity () =
  check_int "sin unary" 1 (Ast.math_fn_arity Ast.Sin);
  check_int "pow binary" 2 (Ast.math_fn_arity Ast.Pow);
  check_bool "unknown name" true (Ast.math_fn_of_name "erf" = None)

(* ------------------------------------------------------------------ *)
(* metrics *)

let test_sizes () =
  check_int "expr size" 3 (Ast.expr_size (Ast.Bin (Ast.Add, Ast.Var "a", Ast.Lit 1.0)));
  check_int "expr depth" 2 (Ast.expr_depth (Ast.Bin (Ast.Add, Ast.Var "a", Ast.Lit 1.0)));
  check_bool "program size positive" true (Ast.program_size sample > 10)

let test_structure_counts () =
  check_int "loops" 1 (Ast.loop_count sample);
  check_int "calls" 1 (Ast.call_count sample);
  check_int "max bound" 4 (Ast.max_loop_bound sample);
  check_int "depth" 2 (Ast.program_depth sample)

let test_declared_and_used () =
  let declared = Ast.declared_names sample in
  check_bool "params listed" true (List.mem "x" declared && List.mem "arr" declared);
  check_bool "counter captured" true (List.mem "i" declared);
  check_bool "temp captured" true (List.mem "t" declared);
  check_bool "comp not listed" false (List.mem "comp" declared)

let test_fresh_name () =
  check_string "taken name gets suffix" "x_1" (Ast.fresh_name sample "x");
  check_string "free name unchanged" "fresh" (Ast.fresh_name sample "fresh");
  check_bool "comp reserved" true (Ast.fresh_name sample "comp" <> "comp")

(* ------------------------------------------------------------------ *)
(* renaming *)

let test_rename_preserves_comp () =
  let renamed = Ast.rename (fun n -> n ^ "_r") sample in
  let declared = Ast.declared_names renamed in
  check_bool "renamed" true (List.mem "x_r" declared);
  check_bool "comp untouched" true
    (Ast.fold_stmts
       (fun acc s ->
         match s with
         | Ast.Assign { lhs = Ast.Lv_var "comp"; _ } -> true
         | _ -> acc)
       (fun acc _ -> acc)
       false renamed.body)

let test_alpha_normalize_canonical () =
  let n1 = Ast.alpha_normalize sample in
  let renamed = Ast.rename (fun n -> "zz_" ^ n) sample in
  let n2 = Ast.alpha_normalize renamed in
  check_bool "rename-invariant" true (Ast.equal n1 n2)

let qcheck_alpha_idempotent =
  QCheck.Test.make ~name:"alpha_normalize idempotent" ~count:100
    arbitrary_program (fun p ->
      let n = Ast.alpha_normalize p in
      Ast.equal n (Ast.alpha_normalize n))

let qcheck_alpha_hash_invariant =
  QCheck.Test.make ~name:"structural_hash invariant under renaming" ~count:100
    arbitrary_program (fun p ->
      let renamed = Ast.rename (fun n -> n ^ "_q") p in
      Ast.structural_hash p = Ast.structural_hash renamed)

let qcheck_rename_size_preserved =
  QCheck.Test.make ~name:"renaming preserves program size" ~count:100
    arbitrary_program (fun p ->
      Ast.program_size p = Ast.program_size (Ast.rename (fun n -> n ^ "x") p))

(* ------------------------------------------------------------------ *)
(* printing *)

let test_lit_to_string () =
  check_string "integral gets .0" "2.0" (Pp.lit_to_string 2.0);
  check_bool "fraction kept" true
    (float_of_string (Pp.lit_to_string 0.1) = 0.1);
  check_bool "negative" true (float_of_string (Pp.lit_to_string (-3.5)) = -3.5);
  Alcotest.check_raises "non-finite rejected"
    (Invalid_argument "Pp.lit_to_string: non-finite literal") (fun () ->
      ignore (Pp.lit_to_string Float.nan))

let qcheck_lit_roundtrip =
  QCheck.Test.make ~name:"literal text parses back to same double" ~count:1000
    QCheck.(map (fun (m, e) -> ldexp m (e mod 900))
              (pair (float_bound_exclusive 1.0) small_int))
    (fun v ->
      QCheck.assume (Float.is_finite v);
      float_of_string (Pp.lit_to_string v) = v)

let test_expr_precedence_printing () =
  let e = Ast.Bin (Ast.Mul, Ast.Bin (Ast.Add, Ast.Var "a", Ast.Var "b"), Ast.Var "c") in
  check_string "parens for low-prec child" "(a + b) * c"
    (Pp.expr_to_string Ast.F64 e);
  let e2 = Ast.Bin (Ast.Add, Ast.Var "a", Ast.Bin (Ast.Mul, Ast.Var "b", Ast.Var "c")) in
  check_string "no spurious parens" "a + b * c" (Pp.expr_to_string Ast.F64 e2);
  let e3 = Ast.Bin (Ast.Add, Ast.Var "a", Ast.Bin (Ast.Add, Ast.Var "b", Ast.Var "c")) in
  check_string "right-nesting parenthesized" "a + (b + c)"
    (Pp.expr_to_string Ast.F64 e3)

let test_neg_printing () =
  check_string "neg var" "-x" (Pp.expr_to_string Ast.F64 (Ast.Neg (Ast.Var "x")));
  check_string "neg literal keeps node" "-(3.5)"
    (Pp.expr_to_string Ast.F64 (Ast.Neg (Ast.Lit 3.5)));
  check_string "negative literal plain" "-3.5"
    (Pp.expr_to_string Ast.F64 (Ast.Lit (-3.5)))

let test_f32_spelling () =
  check_string "float type" "float" (Pp.fp_type_name Ast.F32);
  check_string "sinf" "sinf" (Pp.math_call_name Ast.F32 Ast.Sin);
  check_string "sin" "sin" (Pp.math_call_name Ast.F64 Ast.Sin)

let test_to_c_structure () =
  let src = Pp.to_c sample in
  List.iter
    (fun needle ->
      check_bool (needle ^ " present") true (Util.Text.contains_sub src needle))
    [ "#include <math.h>"; "void compute(double x, double* arr, int n)";
      "double comp = 0.0;"; "printf("; "int main(int argc, char* argv[])";
      "atof(argv[1])"; "return 0;" ]

let test_to_cuda_structure () =
  let src = Pp.to_cuda sample in
  List.iter
    (fun needle ->
      check_bool (needle ^ " present") true (Util.Text.contains_sub src needle))
    [ "__global__ void compute"; "compute<<<1, 1>>>"; "cudaMallocManaged";
      "cudaDeviceSynchronize();" ]

let qcheck_map_exprs_identity =
  QCheck.Test.make ~name:"map_exprs with identity preserves body" ~count:100
    arbitrary_program (fun p ->
      Ast.map_exprs (fun e -> e) p.Ast.body = p.Ast.body)

let () =
  Alcotest.run "lang"
    [
      ( "metadata",
        [
          Alcotest.test_case "math_fn names" `Quick test_math_fn_names_roundtrip;
          Alcotest.test_case "math_fn arity" `Quick test_math_fn_arity;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "structure counts" `Quick test_structure_counts;
          Alcotest.test_case "declared/used" `Quick test_declared_and_used;
          Alcotest.test_case "fresh_name" `Quick test_fresh_name;
        ] );
      ( "renaming",
        [
          Alcotest.test_case "rename keeps comp" `Quick test_rename_preserves_comp;
          Alcotest.test_case "alpha canonical" `Quick test_alpha_normalize_canonical;
          QCheck_alcotest.to_alcotest qcheck_alpha_idempotent;
          QCheck_alcotest.to_alcotest qcheck_alpha_hash_invariant;
          QCheck_alcotest.to_alcotest qcheck_rename_size_preserved;
        ] );
      ( "printing",
        [
          Alcotest.test_case "literals" `Quick test_lit_to_string;
          QCheck_alcotest.to_alcotest qcheck_lit_roundtrip;
          Alcotest.test_case "precedence" `Quick test_expr_precedence_printing;
          Alcotest.test_case "negation" `Quick test_neg_printing;
          Alcotest.test_case "f32 spelling" `Quick test_f32_spelling;
          Alcotest.test_case "C structure" `Quick test_to_c_structure;
          Alcotest.test_case "CUDA structure" `Quick test_to_cuda_structure;
          QCheck_alcotest.to_alcotest qcheck_map_exprs_identity;
        ] );
    ]
