(* Shared test helpers. The (tests) stanza links every module in this
   directory into each suite executable, so suites just [open Helpers].

   Nothing here touches the global [Random] state: temporary-directory
   names come from a per-process counter, so suites stay deterministic
   and independent of test execution order. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let check_float ?(eps = 0.0) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

let parse = Cparse.Parse.program_exn

(* ------------------------------------------------------------------ *)
(* Filesystem *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let tmp_counter = ref 0

(* A fresh path under the system temp dir (not created — callers like
   Recorder.create mkdir it themselves), removed on the way out. *)
let with_tmpdir ?(prefix = "llm4fp-test") f =
  incr tmp_counter;
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)
  in
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Campaign fixtures *)

(* A case archive as comparable bytes: (filename, contents) sorted by
   name. The shape every byte-identity drill (checkpoint resume, engine
   equivalence, fleet shard invariance) compares on. *)
let archive_bytes dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.map (fun name -> (name, read_file (Filename.concat dir name)))

(* The one mini-campaign builder the forensics, checkpoint, harness and
   fleet suites share: a fixed-seed recorded + ordered-traced campaign
   under [root], returning the outcome plus the trace file and archive
   directory it wrote. *)
let run_traced_campaign ?(budget = 20) ?(jobs = 1) ?(seed = 20250704)
    ?(approach = Harness.Approach.Llm4fp) ?(grow_seeds = []) ~root () =
  Util.Durable.mkdir_p root;
  let arch = Filename.concat root "cases" in
  let trace = Filename.concat root "trace.jsonl" in
  let recorder = Difftest.Recorder.create ~dir:arch in
  let oc = open_out_bin trace in
  let outcome =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Obs.Trace.with_sink
          (Obs.Sink.ordered (Obs.Sink.jsonl oc))
          (fun () ->
            Harness.Campaign.run ~budget ~jobs ~recorder ~grow_seeds ~seed
              approach))
  in
  (outcome, trace, arch)

(* ------------------------------------------------------------------ *)
(* Golden files *)

let max_diff_lines = 10

(* Compare [actual] against the committed golden file, failing with a
   compact line diff instead of dumping both documents. *)
let check_golden msg ~golden actual =
  let expected = read_file golden in
  if String.equal expected actual then ()
  else begin
    let el = String.split_on_char '\n' expected in
    let al = String.split_on_char '\n' actual in
    let nth l i =
      match List.nth_opt l i with Some s -> s | None -> "<missing line>"
    in
    let b = Buffer.create 256 in
    let shown = ref 0 in
    let total = ref 0 in
    for i = 0 to max (List.length el) (List.length al) - 1 do
      let e = nth el i and a = nth al i in
      if e <> a then begin
        incr total;
        if !shown < max_diff_lines then begin
          incr shown;
          Buffer.add_string b
            (Printf.sprintf "  line %d\n    golden: %s\n    actual: %s\n"
               (i + 1) e a)
        end
      end
    done;
    if !total > !shown then
      Buffer.add_string b
        (Printf.sprintf "  ... and %d more differing line(s)\n"
           (!total - !shown));
    Alcotest.failf "%s: output differs from %s on %d line(s)\n%s" msg golden
      !total (Buffer.contents b)
  end
