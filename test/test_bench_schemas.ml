(* Schema validation of the checked-in BENCH_*.json files.

   Every stored bench summary declares its schema version; this suite
   re-parses each file and checks it against the spec for that version
   — required fields present, every present field known and of the
   right kind, recursively through the nested objects. A field the
   writer grew without a version bump, or a version whose spec was
   never written down here, fails the suite: the stored trajectory
   files stay machine-readable forever. *)

open Helpers

type kind =
  | Str
  | Int
  | Num  (* Float or Int: whole floats serialize as integers *)
  | Bool
  | Obj of field list
  | List_of of kind
  | Any_obj  (* known to be an object, arbitrary keys (micro timings) *)

and field = { fname : string; fkind : kind; required : bool }

let req fname fkind = { fname; fkind; required = true }
let opt fname fkind = { fname; fkind; required = false }

let phase_spec =
  [ req "label" Str; req "count" Int; req "total_s" Num; req "mean_s" Num;
    req "max_s" Num; req "sim_s" Num ]

let common =
  [ req "schema" Str;
    req "budget" Int;
    req "seed" Int;
    req "jobs" Int;
    opt "tables_seconds" Num;
    req "end_to_end_seconds" Num;
    req "frontend_cache" (Obj [ req "runs" Int; req "hits" Int ]);
    req "phases" (List_of (Obj phase_spec));
    opt "micro_ns_per_call" Any_obj ]

let forensics =
  [ opt "record_overhead_seconds" Num;
    opt "case_archive"
      (Obj
         [ req "cases" Int; req "cross" Int; req "within" Int;
           req "duplicates" Int ]) ]

let reduction =
  [ opt "reduction"
      (Obj
         [ req "cases" Int; req "strictly_smaller" Int;
           req "shrink_ratio_mean" Num; req "shrink_ratio_min" Num;
           req "shrink_ratio_max" Num; req "oracle_calls" Int;
           req "seconds" Num ]) ]

let checkpoint =
  [ opt "checkpoint"
      (Obj
         [ req "overhead_seconds" Num; req "interval" Int;
           req "checkpoints" Int; req "resume_equivalent" Bool ]) ]

let watch =
  [ opt "watch"
      (Obj
         [ req "overhead_seconds" Num; req "polls" Int;
           req "events_streamed" Int ]);
    req "flame_events" Int ]

let engine_v8 =
  [ req "engine" Str;
    req "exec_dedup" (Obj [ req "hits" Int; req "misses" Int ]);
    opt "interp_throughput"
      (Obj
         [ req "inputs" Int; req "tree_programs_per_sec" Num;
           req "vm_programs_per_sec" Num; req "tree_fp_ops_per_sec" Num;
           req "vm_fp_ops_per_sec" Num; req "speedup" Num ]);
    opt "engine_equiv"
      (Obj [ req "budget" Int; req "jobs" Int; req "equivalent" Bool ]) ]

let coverage_v9 =
  [ opt "coverage_cells" Int;
    opt "novel_per_sim_s" Num;
    opt "plateau_at_sim_s" Num ]

let fleet_v10 =
  [ opt "fleet"
      (Obj
         [ req "budget" Int; req "chunk" Int; req "cores" Int;
           req "scaling"
             (List_of
                (Obj [ req "shards" Int; req "seconds" Num; req "speedup" Num ]));
           req "merge_seconds" Num; req "identical" Bool ]) ]

let bandit_v11 =
  [ opt "bandit"
      (Obj
         [ req "budget" Int;
           req "arms"
             (List_of
                (Obj
                   [ req "arm" Str; req "pulls" Int;
                     req "inconsistencies" Int; req "sim_seconds" Num;
                     req "rate" Num ]));
           req "bandit_rate" Num;
           req "fixed" (List_of (Obj [ req "approach" Str; req "rate" Num ]));
           req "best_fixed" Str;
           req "best_fixed_rate" Num;
           req "delta_vs_best_fixed" Num;
           req "resume_equivalent" Bool;
           req "jobs_equivalent" Bool ]) ]

let run_spec = function
  | "llm4fp-bench/3" -> Some common
  | "llm4fp-bench/4" -> Some (common @ forensics)
  | "llm4fp-bench/5" -> Some (common @ forensics @ reduction)
  | "llm4fp-bench/6" -> Some (common @ forensics @ reduction @ checkpoint)
  | "llm4fp-bench/7" ->
    Some (common @ forensics @ reduction @ checkpoint @ watch)
  | "llm4fp-bench/8" ->
    Some (common @ forensics @ reduction @ checkpoint @ watch @ engine_v8)
  | "llm4fp-bench/9" ->
    Some
      (common @ forensics @ reduction @ checkpoint @ watch @ engine_v8
     @ coverage_v9)
  | "llm4fp-bench/10" ->
    Some
      (common @ forensics @ reduction @ checkpoint @ watch @ engine_v8
     @ coverage_v9 @ fleet_v10)
  | "llm4fp-bench/11" ->
    Some
      (common @ forensics @ reduction @ checkpoint @ watch @ engine_v8
     @ coverage_v9 @ fleet_v10 @ bandit_v11)
  | _ -> None

let rec check_kind ctx kind (v : Obs.Json.t) =
  match (kind, v) with
  | Str, Obs.Json.String _ -> ()
  | Int, Obs.Json.Int _ -> ()
  | Num, (Obs.Json.Int _ | Obs.Json.Float _) -> ()
  | Bool, Obs.Json.Bool _ -> ()
  | Any_obj, Obs.Json.Obj _ -> ()
  | Obj spec, Obs.Json.Obj fields -> check_obj ctx spec fields
  | List_of k, Obs.Json.List items ->
    List.iteri (fun i x -> check_kind (Printf.sprintf "%s[%d]" ctx i) k x) items
  | _ -> Alcotest.fail (ctx ^ ": wrong JSON kind")

and check_obj ctx spec fields =
  List.iter
    (fun f ->
      match List.assoc_opt f.fname fields with
      | Some v -> check_kind (ctx ^ "." ^ f.fname) f.fkind v
      | None ->
        if f.required then
          Alcotest.fail
            (Printf.sprintf "%s: missing required field %S" ctx f.fname))
    spec;
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun f -> f.fname = name) spec) then
        Alcotest.fail (Printf.sprintf "%s: unknown field %S" ctx name))
    fields

let schema_of ctx fields =
  match List.assoc_opt "schema" fields with
  | Some (Obs.Json.String s) -> s
  | _ -> Alcotest.fail (ctx ^ ": no schema field")

let check_run ctx fields =
  let schema = schema_of ctx fields in
  match run_spec schema with
  | Some spec -> check_obj (ctx ^ "(" ^ schema ^ ")") spec fields
  | None -> Alcotest.fail (ctx ^ ": unknown run schema " ^ schema)

let check_file path =
  let text = read_file path in
  match Obs.Json.parse (String.trim text) with
  | Error msg -> Alcotest.fail (path ^ ": unparseable: " ^ msg)
  | Ok (Obs.Json.Obj fields) -> begin
    match schema_of path fields with
    | "llm4fp-bench-sweep/1" ->
      check_obj path
        [ req "schema" Str; opt "description" Str;
          req "runs" (List_of Any_obj) ]
        fields;
      (match List.assoc "runs" fields with
      | Obs.Json.List runs ->
        List.iteri
          (fun i run ->
            match run with
            | Obs.Json.Obj run_fields ->
              check_run (Printf.sprintf "%s.runs[%d]" path i) run_fields
            | _ -> Alcotest.fail (path ^ ": non-object run")
          )
          runs
      | _ -> assert false)
    | _ ->
      (* A bare (non-sweep) summary, as LLM4FP_JSON_OUT writes it. *)
      check_run path fields
  end
  | Ok _ -> Alcotest.fail (path ^ ": top level is not an object")

(* Tests run in _build/default/test/; the BENCH files are declared as
   ../BENCH_*.json deps, so the sandbox has them one level up. *)
let bench_files () =
  Sys.readdir ".." |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 6
         && String.sub f 0 6 = "BENCH_"
         && Filename.check_suffix f ".json")
  |> List.sort compare
  |> List.map (fun f -> Filename.concat ".." f)

let test_checked_in_files () =
  let files = bench_files () in
  check_bool "found checked-in BENCH files" true (files <> []);
  List.iter check_file files

let test_rejects_unknown_field () =
  match
    check_obj "synthetic" (Option.get (run_spec "llm4fp-bench/3"))
      [ ("schema", Obs.Json.String "llm4fp-bench/3");
        ("budget", Obs.Json.Int 1);
        ("seed", Obs.Json.Int 1);
        ("jobs", Obs.Json.Int 1);
        ("end_to_end_seconds", Obs.Json.Float 1.0);
        ( "frontend_cache",
          Obs.Json.Obj [ ("runs", Obs.Json.Int 0); ("hits", Obs.Json.Int 0) ] );
        ("phases", Obs.Json.List []);
        ("sneaky_new_field", Obs.Json.Int 7) ]
  with
  | exception _ -> ()
  | () -> Alcotest.fail "unknown field accepted"

let test_rejects_missing_field () =
  match
    check_obj "synthetic" (Option.get (run_spec "llm4fp-bench/7"))
      [ ("schema", Obs.Json.String "llm4fp-bench/7");
        ("budget", Obs.Json.Int 1);
        ("seed", Obs.Json.Int 1);
        ("jobs", Obs.Json.Int 1);
        ("end_to_end_seconds", Obs.Json.Float 1.0);
        ( "frontend_cache",
          Obs.Json.Obj [ ("runs", Obs.Json.Int 0); ("hits", Obs.Json.Int 0) ] );
        ("phases", Obs.Json.List []) ]
    (* flame_events is required in v7 and absent here *)
  with
  | exception _ -> ()
  | () -> Alcotest.fail "missing required field accepted"

let () =
  Alcotest.run "bench-schemas"
    [
      ( "schemas",
        [
          Alcotest.test_case "checked-in BENCH files validate" `Quick
            test_checked_in_files;
          Alcotest.test_case "unknown field rejected" `Quick
            test_rejects_unknown_field;
          Alcotest.test_case "missing field rejected" `Quick
            test_rejects_missing_field;
        ] );
    ]
