(* Tests for the forensics layer: case fingerprints, the flight-recorder
   archive, deterministic ordered traces at any job count, explain's
   bit-exact replay, percentile math, and the golden dashboard. *)

open Helpers

let gcc = Compiler.Personality.Gcc
let nvcc = Compiler.Personality.Nvcc

let sample_case () =
  {
    Difftest.Case.kind = Difftest.Case.Cross;
    left =
      {
        Difftest.Case.config =
          Compiler.Config.make gcc Compiler.Optlevel.O3;
        hex = "3ff0000000000000";
        class_ = Fp.Bits.Real;
      };
    right =
      {
        Difftest.Case.config =
          Compiler.Config.make nvcc Compiler.Optlevel.O3;
        hex = "3ff0000000000001";
        class_ = Fp.Bits.Real;
      };
    level = Compiler.Optlevel.O3;
    digits = 16;
    source = "void compute(double x) { printf(\"%.17g\\n\", x); }\n";
    inputs =
      [ Irsim.Inputs.Fp 1.5; Irsim.Inputs.Int 3;
        Irsim.Inputs.Arr [| 0.5; -0.25 |] ];
    seed = 1;
    slot = 2;
  }

(* The constant below is the fingerprint of [sample_case] as computed by
   a separate process: FNV-1a is implemented over explicitly serialized
   bytes, so the value must never drift across runs, processes, or
   architectures. If this test starts failing, the archive format has
   changed and every stored case file is invalidated. *)
let test_fingerprint_stable () =
  check_string "pinned fingerprint" "68de3afb36f4ed70"
    (Difftest.Case.fingerprint (sample_case ()))

let test_fingerprint_ignores_provenance () =
  let base = sample_case () in
  let moved = { base with Difftest.Case.seed = 99; slot = 77 } in
  check_string "provenance-free"
    (Difftest.Case.fingerprint base)
    (Difftest.Case.fingerprint moved);
  let other_bits =
    {
      base with
      Difftest.Case.right =
        { base.Difftest.Case.right with Difftest.Case.hex = "3ff0000000000002" };
    }
  in
  check_bool "output bits are identity" false
    (Difftest.Case.fingerprint base = Difftest.Case.fingerprint other_bits)

let test_case_json_roundtrip () =
  let case = sample_case () in
  let line = Obs.Json.to_string (Difftest.Case.to_json case) in
  match Obs.Json.parse line with
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg)
  | Ok json -> begin
    match Difftest.Case.of_json json with
    | Error msg -> Alcotest.fail ("decode failed: " ^ msg)
    | Ok decoded ->
      check_bool "round-trips" true (decoded = case);
      check_string "fingerprint preserved"
        (Difftest.Case.fingerprint case)
        (Difftest.Case.fingerprint decoded)
  end

let test_case_json_integrity () =
  let case = sample_case () in
  let json = Difftest.Case.to_json case in
  let tampered =
    match json with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "digits" then (k, Obs.Json.Int 3) else (k, v))
           fields)
    | _ -> Alcotest.fail "case JSON is not an object"
  in
  (match Difftest.Case.of_json tampered with
  | Ok _ -> ()  (* digits is not part of the hash *)
  | Error msg -> Alcotest.fail ("digits tamper should decode: " ^ msg));
  let tampered_hex =
    match json with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "left" then
               match v with
               | Obs.Json.Obj side ->
                 ( k,
                   Obs.Json.Obj
                     (List.map
                        (fun (sk, sv) ->
                          if sk = "hex" then
                            (sk, Obs.Json.String "4000000000000000")
                          else (sk, sv))
                        side) )
               | _ -> (k, v)
             else (k, v))
           fields)
    | _ -> assert false
  in
  match Difftest.Case.of_json tampered_hex with
  | Ok _ -> Alcotest.fail "tampered output bits decoded"
  | Error msg -> check_bool "names the mismatch" true (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Recorder *)

let test_recorder_dedup () =
  with_tmpdir ~prefix:"llm4fp-recorder" @@ fun dir ->
  let r = Difftest.Recorder.create ~dir in
  let case = sample_case () in
  check_bool "first is new" true (Difftest.Recorder.record r case);
  check_bool "second is duplicate" false (Difftest.Recorder.record r case);
  check_int "one recorded" 1 (Difftest.Recorder.count r);
  check_int "one duplicate" 1 (Difftest.Recorder.duplicates r);
  (* a fresh recorder over the same directory seeds its dedup set from
     the existing files *)
  let r2 = Difftest.Recorder.create ~dir in
  check_bool "persisted dedup" false (Difftest.Recorder.record r2 case);
  check_int "nothing re-recorded" 0 (Difftest.Recorder.count r2);
  match Difftest.Recorder.load_dir dir with
  | Error msg -> Alcotest.fail msg
  | Ok cases ->
    check_int "archive holds one case" 1 (List.length cases);
    check_bool "loaded equals recorded" true (List.hd cases = case)

(* A truncated archive file — half a JSON line, as a torn non-atomic
   write would leave behind — must load as a useful [Error] naming the
   file, never an exception. (The recorder's own writes are atomic
   temp+rename, so this guards against foreign corruption.) *)
let test_load_truncated () =
  with_tmpdir ~prefix:"llm4fp-truncated" @@ fun dir ->
  let r = Difftest.Recorder.create ~dir in
  let case = sample_case () in
  ignore (Difftest.Recorder.record r case);
  let path = Filename.concat dir (Difftest.Case.fingerprint case ^ ".jsonl") in
  let whole = read_file path in
  let rewrite content =
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc
  in
  rewrite (String.sub whole 0 (String.length whole / 2));
  (match Difftest.Recorder.load_file path with
  | Ok _ -> Alcotest.fail "truncated case file decoded"
  | Error msg ->
    check_bool "error names the file" true
      (String.length msg > 0
      && String.starts_with ~prefix:path msg));
  (match Difftest.Recorder.load_dir dir with
  | Ok _ -> Alcotest.fail "archive with a truncated member loaded"
  | Error _ -> ());
  rewrite "";
  match Difftest.Recorder.load_file path with
  | Ok _ -> Alcotest.fail "empty case file decoded"
  | Error msg -> check_bool "empty file named" true (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Campaign + recorder determinism across job counts *)

let archive_of ~jobs ~dir =
  let recorder = Difftest.Recorder.create ~dir in
  let outcome =
    Harness.Campaign.run ~budget:15 ~jobs ~recorder ~seed:20250704
      Harness.Approach.Llm4fp
  in
  (recorder, outcome)

let test_archive_identical_across_jobs () =
  with_tmpdir ~prefix:"llm4fp-arch1" @@ fun d1 ->
  with_tmpdir ~prefix:"llm4fp-arch4" @@ fun d4 ->
  let r1, o1 = archive_of ~jobs:1 ~dir:d1 in
  let r4, o4 = archive_of ~jobs:4 ~dir:d4 in
  check_int "same case count"
    (Difftest.Recorder.count r1) (Difftest.Recorder.count r4);
  check_bool "recorded something" true (Difftest.Recorder.count r1 > 0);
  check_int "same inconsistency totals"
    (Difftest.Stats.total_inconsistencies o1.Harness.Campaign.stats)
    (Difftest.Stats.total_inconsistencies o4.Harness.Campaign.stats);
  check_bool "byte-identical archives" true
    (archive_bytes d1 = archive_bytes d4)

let ordered_trace_lines ~jobs =
  let path = Filename.temp_file "llm4fp_forensics_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  with_tmpdir ~prefix:"llm4fp-trace-arch" @@ fun dir ->
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Obs.Trace.with_sink
        (Obs.Sink.ordered (Obs.Sink.jsonl oc))
        (fun () -> ignore (archive_of ~jobs ~dir)));
  String.split_on_char '\n' (read_file path)

let test_ordered_trace_identical_across_jobs () =
  let seq = ordered_trace_lines ~jobs:1 in
  let par = ordered_trace_lines ~jobs:4 in
  check_bool "non-empty" true (List.length seq > 10);
  check_bool "ordered traces byte-identical at jobs 1 and 4" true (seq = par)

(* ------------------------------------------------------------------ *)
(* Explain: replay must reproduce the archived bits exactly *)

let test_replay_reproduces () =
  with_tmpdir ~prefix:"llm4fp-replay" @@ fun dir ->
  let _, _ = archive_of ~jobs:1 ~dir in
  match Difftest.Recorder.load_dir dir with
  | Error msg -> Alcotest.fail msg
  | Ok [] -> Alcotest.fail "archive is empty"
  | Ok cases ->
    List.iter
      (fun case ->
        match Forensics.Explain.replay case with
        | Error msg -> Alcotest.fail ("replay failed: " ^ msg)
        | Ok outcome ->
          check_bool "bit-exact reproduction" true
            outcome.Forensics.Explain.reproduced;
          (match outcome.Forensics.Explain.verdict with
          | Ok (Isolate.Isolated set) ->
            check_bool "non-empty statement set" true (set <> [])
          | Ok Isolate.Runtime_divergence -> ()
          | Ok Isolate.No_inconsistency ->
            Alcotest.fail "archived case replays as consistent"
          | Error msg -> Alcotest.fail ("isolation failed: " ^ msg));
          let report = Forensics.Explain.render outcome in
          check_bool "report shows reproduction" true
            (String.length report > 0))
      cases

let test_explain_load () =
  with_tmpdir ~prefix:"llm4fp-load" @@ fun dir ->
  let r = Difftest.Recorder.create ~dir in
  let case = sample_case () in
  ignore (Difftest.Recorder.record r case);
  let fp = Difftest.Case.fingerprint case in
  (match Forensics.Explain.load ~dir fp with
  | Ok loaded -> check_bool "by fingerprint" true (loaded = case)
  | Error msg -> Alcotest.fail msg);
  (match Forensics.Explain.load (Filename.concat dir (fp ^ ".jsonl")) with
  | Ok loaded -> check_bool "by path" true (loaded = case)
  | Error msg -> Alcotest.fail msg);
  match Forensics.Explain.load ~dir "0123456789abcdef" with
  | Ok _ -> Alcotest.fail "resolved a missing fingerprint"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Percentile math *)

let test_percentiles () =
  let bounds = [| 1.0; 2.0; 4.0 |] in
  let p counts q = Obs.Metrics.percentile_of ~bounds ~counts q in
  (* 2 observations <=1, 2 in (1,2] *)
  let counts = [| 2; 2; 0; 0 |] in
  Alcotest.(check (float 1e-9)) "p50 interpolates" 1.0 (p counts 0.50);
  Alcotest.(check (float 1e-9)) "p75 in second bucket" 1.5 (p counts 0.75);
  Alcotest.(check (float 1e-9)) "p100 tops out" 2.0 (p counts 1.0);
  (* overflow bucket reports the last finite bound *)
  Alcotest.(check (float 1e-9)) "overflow clamps" 4.0 (p [| 0; 0; 0; 5 |] 0.99);
  check_bool "empty is nan" true (Float.is_nan (p [| 0; 0; 0; 0 |] 0.5));
  (match Obs.Metrics.percentile_of ~bounds ~counts 0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q=0 accepted");
  (* registry-level accessor agrees *)
  let h = Obs.Metrics.histogram ~buckets:bounds "test.forensics.h" in
  List.iter (Obs.Metrics.observe h) [ 0.5; 0.5; 1.5; 1.5 ];
  Alcotest.(check (float 1e-9)) "histogram_percentile" 1.0
    (Obs.Metrics.histogram_percentile h 0.50)

(* ------------------------------------------------------------------ *)
(* Experiments sections: CSV view next to the text view *)

let test_sections_csv () =
  let suite = Harness.Experiments.run_suite ~budget:6 ~seed:20250704 () in
  let sections = Harness.Experiments.sections suite in
  let names =
    List.map (fun (s : Harness.Experiments.section) -> s.Harness.Experiments.name) sections
  in
  check_bool "paper order" true
    (names
    = [ "summary"; "table1"; "table2"; "table3"; "figure3"; "table4";
        "table5"; "table6"; "features"; "bandit" ]);
  let by_name n =
    List.find
      (fun (s : Harness.Experiments.section) -> s.Harness.Experiments.name = n)
      sections
  in
  check_bool "summary has no CSV" true
    ((by_name "summary").Harness.Experiments.csv = None);
  (match (by_name "table2").Harness.Experiments.csv with
  | None -> Alcotest.fail "table2 has no CSV"
  | Some csv ->
    let first = List.hd (String.split_on_char '\n' csv) in
    check_string "CSV header" "Approach,Incons. Rate,# Incons.,Time Cost"
      first);
  (* all_tables is the text projection of sections *)
  check_bool "all_tables matches sections" true
    (Harness.Experiments.all_tables suite
    = List.map
        (fun (s : Harness.Experiments.section) ->
          (s.Harness.Experiments.name, s.Harness.Experiments.text))
        sections)

(* ------------------------------------------------------------------ *)
(* Golden dashboard: fixed-seed mini-campaign, byte-compared against the
   committed HTML. Regenerate with:
     dune exec bin/llm4fp.exe -- campaign llm4fp -b 12 -s 20250704 --record DIR
     dune exec bin/llm4fp.exe -- dashboard DIR --html test/golden/dashboard.html --title golden *)

let test_golden_dashboard () =
  with_tmpdir ~prefix:"llm4fp-golden" @@ fun dir ->
  let recorder = Difftest.Recorder.create ~dir in
  ignore
    (Harness.Campaign.run ~budget:12 ~recorder ~seed:20250704
       Harness.Approach.Llm4fp);
  match Difftest.Recorder.load_dir dir with
  | Error msg -> Alcotest.fail msg
  | Ok cases ->
    let analytics =
      Report.Analytics.build (List.map Difftest.Case.to_analytics cases)
    in
    let html = Report.Analytics.render_html ~title:"golden" analytics in
    check_golden "dashboard" ~golden:"golden/dashboard.html" html

let () =
  Alcotest.run "forensics"
    [
      ( "case",
        [
          Alcotest.test_case "fingerprint stable" `Quick
            test_fingerprint_stable;
          Alcotest.test_case "fingerprint ignores provenance" `Quick
            test_fingerprint_ignores_provenance;
          Alcotest.test_case "json roundtrip" `Quick test_case_json_roundtrip;
          Alcotest.test_case "json integrity" `Quick test_case_json_integrity;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "dedup" `Quick test_recorder_dedup;
          Alcotest.test_case "truncated file rejected" `Quick
            test_load_truncated;
          Alcotest.test_case "archive identical across jobs" `Slow
            test_archive_identical_across_jobs;
          Alcotest.test_case "ordered trace identical across jobs" `Slow
            test_ordered_trace_identical_across_jobs;
        ] );
      ( "explain",
        [
          Alcotest.test_case "replay reproduces" `Slow test_replay_reproduces;
          Alcotest.test_case "load resolves references" `Quick
            test_explain_load;
        ] );
      ( "analytics",
        [
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "sections csv" `Slow test_sections_csv;
          Alcotest.test_case "golden dashboard" `Slow test_golden_dashboard;
        ] );
    ]
