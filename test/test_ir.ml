(* Tests for lib/ir (irsim): lowering, interpretation, and every
   optimization pass. *)

open Lang
open Helpers

let strict_rt =
  { Irsim.Interp.libm = Mathlib.Libm.Glibc; ftz = false; nan_cmp_taken = false }

let run_strict src inputs =
  (Irsim.Interp.run strict_rt (Irsim.Lower.program (parse src)) inputs)
    .Irsim.Interp.result

let arbitrary_case =
  (* (program, inputs) pairs from the Varity generator *)
  QCheck.make
    ~print:(fun (p, _) -> Pp.to_c p)
    (QCheck.Gen.map
       (fun seed -> Gen.Varity.gen_case (Util.Rng.of_int seed))
       QCheck.Gen.int)

(* ------------------------------------------------------------------ *)
(* Lowering *)

let test_lower_slots () =
  let ir = Irsim.Lower.program (parse {|
void compute(double x, double* a, int n) {
  double comp = 0.0;
  double t = x;
  for (int i = 0; i < 8; ++i) {
    comp += a[i] * t;
  }
}
|}) in
  check_int "comp slot" 0 ir.Irsim.Ir.comp_slot;
  check_int "fslots: comp, x, t" 3 ir.Irsim.Ir.n_fslots;
  check_int "islots: n, i" 2 ir.Irsim.Ir.n_islots;
  check_bool "one array of length 8" true (ir.Irsim.Ir.arr_lens = [| 8 |]);
  check_int "bindings" 3 (List.length ir.Irsim.Ir.bindings)

let test_lower_compound_assign () =
  let ir = Irsim.Lower.program
      (parse "void compute(double x) { double comp = 0.0; comp -= x; }") in
  match ir.Irsim.Ir.body with
  | [ Irsim.Ir.Store (0, Irsim.Ir.Bin (Ast.Sub, Irsim.Ir.Load 0, Irsim.Ir.Load 1)) ] -> ()
  | _ -> Alcotest.failf "unexpected lowering: %s" (Format.asprintf "%a" Irsim.Ir.pp ir)

let test_lower_int_promotion () =
  let v = run_strict
      "void compute(double x, int n) { double comp = 0.0; comp = x + n; }"
      Irsim.Inputs.[ Fp 1.5; Int 4 ] in
  check_float "promoted" 5.5 v

(* ------------------------------------------------------------------ *)
(* Interpreter semantics *)

let test_interp_arithmetic () =
  check_float "basic" 7.0
    (run_strict "void compute(double x) { double comp = 0.0; comp = x * 2.0 + 1.0; }"
       Irsim.Inputs.[ Fp 3.0 ])

let test_interp_loop_accumulation () =
  check_float "sum of arr" 10.0
    (run_strict {|
void compute(double* a) {
  double comp = 0.0;
  for (int i = 0; i < 4; ++i) {
    comp += a[i];
  }
}
|} Irsim.Inputs.[ Arr [| 1.0; 2.0; 3.0; 4.0; 0.0; 0.0; 0.0; 0.0 |] ])

let test_interp_branch () =
  let src = {|
void compute(double x) {
  double comp = 0.0;
  if (x > 1.0) {
    comp = 10.0;
  }
  if (x <= 1.0) {
    comp = 20.0;
  }
}
|} in
  check_float "taken" 10.0 (run_strict src Irsim.Inputs.[ Fp 2.0 ]);
  check_float "not taken" 20.0 (run_strict src Irsim.Inputs.[ Fp 0.5 ])

let test_interp_nan_comparison () =
  let src = {|
void compute(double x) {
  double comp = 0.0;
  double bad = x / x;
  if (bad < 1.0) {
    comp = 1.0;
  }
  if (bad >= 1.0) {
    comp += 2.0;
  }
}
|} in
  (* x = 0 -> bad = NaN: IEEE comparisons all false *)
  check_float "ieee: no branch taken" 0.0 (run_strict src Irsim.Inputs.[ Fp 0.0 ]);
  (* finite-math codegen: both branches taken *)
  let rt = { strict_rt with Irsim.Interp.nan_cmp_taken = true } in
  let v =
    (Irsim.Interp.run rt (Irsim.Lower.program (parse src)) Irsim.Inputs.[ Fp 0.0 ])
      .Irsim.Interp.result
  in
  check_float "finite-math: branches taken" 3.0 v

let test_interp_array_writes () =
  check_float "writeback" 9.0
    (run_strict {|
void compute(double* a) {
  double comp = 0.0;
  a[0] = a[0] * 2.0;
  a[1] += a[0];
  comp = a[0] + a[1];
}
|} Irsim.Inputs.[ Arr [| 2.0; 1.0; 0.0; 0.0; 0.0; 0.0; 0.0; 0.0 |] ])

let test_interp_ftz () =
  let src = "void compute(double x) { double comp = 0.0; comp = x * 0.5; }" in
  let ir = Irsim.Lower.program (parse src) in
  let tiny = ldexp 1.0 (-1060) in (* x*0.5 is subnormal *)
  let normal =
    (Irsim.Interp.run strict_rt ir Irsim.Inputs.[ Fp tiny ]).Irsim.Interp.result
  in
  let flushed =
    (Irsim.Interp.run { strict_rt with Irsim.Interp.ftz = true } ir
       Irsim.Inputs.[ Fp tiny ]).Irsim.Interp.result
  in
  check_bool "kept subnormal" true (normal <> 0.0);
  check_float "flushed to zero" 0.0 flushed

let test_interp_f32_rounding () =
  let src = "void compute(float x) { float comp = 0.0; comp = x + 1e-9; }" in
  let v = run_strict src Irsim.Inputs.[ Fp 1.0 ] in
  (* in float32, 1 + 1e-9 rounds back to 1 *)
  check_float "f32 absorbs" 1.0 v

let test_interp_ops_counted () =
  let ir = Irsim.Lower.program (parse {|
void compute(double x) {
  double comp = 0.0;
  for (int i = 0; i < 10; ++i) {
    comp += x * 2.0;
  }
}
|}) in
  let out = Irsim.Interp.run strict_rt ir Irsim.Inputs.[ Fp 1.0 ] in
  check_int "2 ops x 10 iterations" 20 out.Irsim.Interp.fp_ops

let test_interp_input_mismatch () =
  let ir = Irsim.Lower.program (parse "void compute(double x) { double comp = 0.0; comp = x; }") in
  check_bool "arity check" true
    (try ignore (Irsim.Interp.run strict_rt ir []); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* The flattened register VM against the tree interpreter *)

let same_outcome name (a : Irsim.Interp.outcome) (b : Irsim.Interp.outcome) =
  check_bool (name ^ ": result bits") true
    (Int64.bits_of_float a.Irsim.Interp.result
    = Int64.bits_of_float b.Irsim.Interp.result);
  check_int (name ^ ": fp_ops") a.Irsim.Interp.fp_ops b.Irsim.Interp.fp_ops

let vm_runtimes =
  [ ("strict", strict_rt);
    ("ftz", { strict_rt with Irsim.Interp.ftz = true });
    ("finite-math", { strict_rt with Irsim.Interp.nan_cmp_taken = true });
    ( "fast-libm+ftz",
      { Irsim.Interp.libm = Mathlib.Libm.Gcc_fast;
        ftz = true;
        nan_cmp_taken = true } ) ]

(* loops, array read/write, divergent branches, a libm call, and a
   subnormal constant so FTZ runtimes exercise the flush paths *)
let vm_rich_src = {|
void compute(double x, double* a) {
  double comp = 0.0;
  double t = x;
  for (int i = 0; i < 6; ++i) {
    a[i] = a[i] * t + 1e-310;
    if (a[i] > 0.5) {
      t = t - a[i] / 3.0;
    }
    comp += sin(a[i] + t);
  }
  comp = comp * x - t;
}
|}

let vm_rich_inputs k =
  Irsim.Inputs.
    [ Fp (0.25 +. (0.5 *. float_of_int k));
      Arr (Array.init 8 (fun i -> float_of_int ((i + k) mod 5) /. 3.0)) ]

let test_vm_matches_tree_all_runtimes () =
  let ir = Irsim.Lower.program (parse vm_rich_src) in
  List.iter
    (fun (name, rt) ->
      let vm = Irsim.Vm.flatten rt ir in
      check_bool (name ^ ": nonempty code") true (Irsim.Vm.code_size vm > 0);
      check_int (name ^ ": disasm covers code")
        (Irsim.Vm.code_size vm)
        (List.length (Irsim.Vm.disasm vm));
      for k = 0 to 4 do
        let inputs = vm_rich_inputs k in
        same_outcome
          (Printf.sprintf "%s[%d]" name k)
          (Irsim.Interp.run rt ir inputs)
          (Irsim.Vm.run vm inputs)
      done)
    vm_runtimes

let test_vm_batch_divergent_lanes () =
  (* lanes fall on both sides of the branch (and some hit the NaN
     comparison path through 0/0) yet stay bit-identical to the tree *)
  let src = {|
void compute(double x) {
  double comp = 0.0;
  double bad = x / x;
  if (bad < 1.0) {
    comp = comp + x * 3.0;
  }
  if (x >= 2.0) {
    comp = comp - 1.0 / x;
  }
}
|} in
  let ir = Irsim.Lower.program (parse src) in
  let inputs =
    List.map (fun v -> Irsim.Inputs.[ Fp v ]) [ 0.0; 0.5; 2.0; -3.0; 7.5 ]
  in
  List.iter
    (fun (name, rt) ->
      let vm = Irsim.Vm.flatten rt ir in
      let tree = List.map (Irsim.Interp.run rt ir) inputs in
      let batch = Irsim.Vm.run_batch vm inputs in
      List.iteri
        (fun l (a, b) -> same_outcome (Printf.sprintf "%s lane %d" name l) a b)
        (List.combine tree batch))
    vm_runtimes

let test_vm_loop_residual_counter () =
  (* the counter slot keeps bound-1 after the loop, and a zero-trip
     loop leaves it untouched — in both engines *)
  let body bound =
    [ Irsim.Ir.For
        { islot = 0; bound; body = [ Irsim.Ir.Store (0, Irsim.Ir.Const 1.0) ] };
      Irsim.Ir.Store (0, Irsim.Ir.Itof (Irsim.Ir.Iload 0)) ]
  in
  let ir bound =
    { Irsim.Ir.precision = Ast.F64; n_fslots = 1; n_islots = 1;
      arr_lens = [||]; bindings = []; body = body bound; comp_slot = 0 }
  in
  List.iter
    (fun bound ->
      let ir = ir bound in
      let tree = Irsim.Interp.run strict_rt ir [] in
      let vm = Irsim.Vm.run (Irsim.Vm.flatten strict_rt ir) [] in
      same_outcome (Printf.sprintf "bound %d" bound) tree vm)
    [ 5; 1; 0 ]

let oob_ir =
  (* comp = a[n]: traps when n is out of [0, 8) *)
  { Irsim.Ir.precision = Ast.F64; n_fslots = 1; n_islots = 1;
    arr_lens = [| 8 |];
    bindings = [ Irsim.Ir.Bind_arr (0, 8); Irsim.Ir.Bind_int 0 ];
    body = [ Irsim.Ir.Store (0, Irsim.Ir.Load_arr (0, Irsim.Ir.Iload 0)) ];
    comp_slot = 0 }

let oob_inputs n = Irsim.Inputs.[ Arr (Array.make 8 1.5); Int n ]

let trap_of f =
  match f () with
  | exception Irsim.Interp.Trap t -> Some t
  | _ -> None

let test_vm_trap_matches_tree () =
  let vm = Irsim.Vm.flatten strict_rt oob_ir in
  List.iter
    (fun n ->
      let tree = trap_of (fun () -> Irsim.Interp.run strict_rt oob_ir (oob_inputs n)) in
      let reg = trap_of (fun () -> Irsim.Vm.run vm (oob_inputs n)) in
      check_bool (Printf.sprintf "same trap for n=%d" n) true (tree = reg))
    [ 0; 7; 8; -1; 100 ]

let test_vm_batch_trap_order () =
  (* the first trapped lane in input order raises, exactly as a
     sequential List.map would *)
  let vm = Irsim.Vm.flatten strict_rt oob_ir in
  let batch = List.map oob_inputs [ 3; 12; 0; -1 ] in
  (match trap_of (fun () -> Irsim.Vm.run_batch vm batch) with
  | Some t ->
    check_int "array" 0 t.Irsim.Interp.array;
    check_int "index of first bad lane" 12 t.Irsim.Interp.index;
    check_int "length" 8 t.Irsim.Interp.length
  | None -> Alcotest.fail "batch did not trap");
  (* surviving-lane results are unaffected by a prior trapping batch *)
  let ok = List.map oob_inputs [ 2; 5 ] in
  let a = Irsim.Vm.run_batch vm ok in
  let b = List.map (Irsim.Vm.run vm) ok in
  List.iteri
    (fun l (x, y) -> same_outcome (Printf.sprintf "clean lane %d" l) x y)
    (List.combine a b)

let test_vm_flatten_rejects_bad_ir () =
  let bad =
    { Irsim.Ir.precision = Ast.F64; n_fslots = 1; n_islots = 0;
      arr_lens = [||]; bindings = [];
      body = [ Irsim.Ir.Store (0, Irsim.Ir.Load 99) ]; comp_slot = 0 }
  in
  check_bool "slot out of range" true
    (try ignore (Irsim.Vm.flatten strict_rt bad); false
     with Invalid_argument _ -> true);
  let bad_binding =
    { oob_ir with Irsim.Ir.bindings = [ Irsim.Ir.Bind_arr (0, 4) ] }
  in
  check_bool "binding length mismatch" true
    (try ignore (Irsim.Vm.flatten strict_rt bad_binding); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Fold *)

let test_fold_arith () =
  let ir = Irsim.Lower.program
      (parse "void compute(double x) { double comp = 0.0; comp = x + 2.0 * 3.0; }") in
  let folded = Irsim.Fold.run { fold_arith = true; fold_calls = None } ir in
  match folded.Irsim.Ir.body with
  | [ Irsim.Ir.Store (0, Irsim.Ir.Bin (Ast.Add, Irsim.Ir.Load 1, Irsim.Ir.Const 6.0)) ] -> ()
  | _ -> Alcotest.fail "constant not folded"

let test_fold_calls_only_on_consts () =
  let src = "void compute(double x) { double comp = 0.0; comp = sin(2.0) + sin(x); }" in
  let ir = Irsim.Lower.program (parse src) in
  let folded =
    Irsim.Fold.run { fold_arith = true; fold_calls = Some Mathlib.Libm.Glibc } ir
  in
  let count_calls body =
    let c = ref 0 in
    let rec go (e : Irsim.Ir.expr) =
      match e with
      | Irsim.Ir.Call (_, args) -> incr c; List.iter go args
      | Irsim.Ir.Bin (_, a, b) -> go a; go b
      | Irsim.Ir.Neg a | Irsim.Ir.Recip a -> go a
      | Irsim.Ir.Fma (a, b, c2) -> go a; go b; go c2
      | _ -> ()
    in
    ignore (Irsim.Ir.map_body (fun e -> go e; e) body);
    !c
  in
  check_int "only the variable call remains" 1 (count_calls folded.Irsim.Ir.body)

let qcheck_fold_arith_transparent =
  QCheck.Test.make ~name:"arith folding preserves results exactly" ~count:200
    arbitrary_case (fun (p, inputs) ->
      let ir = Irsim.Lower.program p in
      let folded = Irsim.Fold.run { fold_arith = true; fold_calls = None } ir in
      let a = (Irsim.Interp.run strict_rt ir inputs).Irsim.Interp.result in
      let b = (Irsim.Interp.run strict_rt folded inputs).Irsim.Interp.result in
      Int64.bits_of_float a = Int64.bits_of_float b)

(* ------------------------------------------------------------------ *)
(* Contraction *)

let test_contract_syntactic_patterns () =
  let lower_expr src =
    let ir = Irsim.Lower.program (parse ("void compute(double a, double b, double c) { double comp = 0.0; comp = " ^ src ^ "; }")) in
    match (Irsim.Contract.run Irsim.Contract.Syntactic ir).Irsim.Ir.body with
    | [ Irsim.Ir.Store (0, e) ] -> e
    | _ -> Alcotest.fail "unexpected shape"
  in
  (match lower_expr "a * b + c" with
   | Irsim.Ir.Fma (Irsim.Ir.Load 1, Irsim.Ir.Load 2, Irsim.Ir.Load 3) -> ()
   | _ -> Alcotest.fail "mul+add not fused");
  (match lower_expr "c + a * b" with
   | Irsim.Ir.Fma (Irsim.Ir.Load 1, Irsim.Ir.Load 2, Irsim.Ir.Load 3) -> ()
   | _ -> Alcotest.fail "add+mul not fused");
  (match lower_expr "a * b - c" with
   | Irsim.Ir.Fma (_, _, Irsim.Ir.Neg _) -> ()
   | _ -> Alcotest.fail "mul-sub not fused");
  (match lower_expr "c - a * b" with
   | Irsim.Ir.Fma (Irsim.Ir.Neg _, _, _) -> ()
   | _ -> Alcotest.fail "sub-mul not fused")

let test_contract_changes_rounding () =
  (* squaring 1+2^-27 and subtracting 1: fused keeps the cross term *)
  let src = "void compute(double a) { double comp = 0.0; comp = a * a - 1.0; }" in
  let ir = Irsim.Lower.program (parse src) in
  let contracted = Irsim.Contract.run Irsim.Contract.Syntactic ir in
  let x = Irsim.Inputs.[ Fp (1.0 +. 0x1p-27) ] in
  let plain = (Irsim.Interp.run strict_rt ir x).Irsim.Interp.result in
  let fused = (Irsim.Interp.run strict_rt contracted x).Irsim.Interp.result in
  check_bool "different rounding" true (plain <> fused)

let test_cross_stmt_contraction () =
  let src = {|
void compute(double a, double* xs, double* ys) {
  double comp = 0.0;
  for (int i = 0; i < 8; ++i) {
    double t = a * xs[i];
    comp += t + ys[i];
  }
}
|} in
  let ir = Irsim.Lower.program (parse src) in
  let gcc = Irsim.Dce.run (Irsim.Contract.run Irsim.Contract.Cross_stmt ir) in
  let clang = Irsim.Dce.run (Irsim.Contract.run Irsim.Contract.Syntactic ir) in
  let has_fma ir =
    let found = ref false in
    let rec go (e : Irsim.Ir.expr) =
      match e with
      | Irsim.Ir.Fma _ -> found := true
      | Irsim.Ir.Bin (_, a, b) -> go a; go b
      | Irsim.Ir.Neg a | Irsim.Ir.Recip a -> go a
      | Irsim.Ir.Call (_, args) -> List.iter go args
      | _ -> ()
    in
    ignore (Irsim.Ir.map_body (fun e -> go e; e) ir.Irsim.Ir.body);
    !found
  in
  check_bool "gcc fuses across statements" true (has_fma gcc);
  check_bool "clang does not" false (has_fma clang)

let test_forward_blocked_by_redefinition () =
  (* the multiplicand is redefined between def and use: no forwarding *)
  let src = {|
void compute(double a, double b) {
  double comp = 0.0;
  double t = a * b;
  a = 5.0;
  comp = t + 1.0;
}
|} in
  (* note: parameters are assignable scalars in the language *)
  let ir = Irsim.Lower.program (parse src) in
  let forwarded = Irsim.Contract.run Irsim.Contract.Cross_stmt ir in
  let inputs = Irsim.Inputs.[ Fp (1.0 +. 0x1p-27); Fp (1.0 +. 0x1p-27) ] in
  let before = (Irsim.Interp.run strict_rt ir inputs).Irsim.Interp.result in
  let after = (Irsim.Interp.run strict_rt forwarded inputs).Irsim.Interp.result in
  check_bool "semantics preserved despite barrier" true
    (Int64.bits_of_float before = Int64.bits_of_float after)

let qcheck_forwarding_value_preserving =
  (* forwarding alone (without contraction) must never change results *)
  QCheck.Test.make ~name:"Forward.run preserves results exactly" ~count:200
    arbitrary_case (fun (p, inputs) ->
      let ir = Irsim.Lower.program p in
      let fwd = Irsim.Forward.run ir in
      let a = (Irsim.Interp.run strict_rt ir inputs).Irsim.Interp.result in
      let b = (Irsim.Interp.run strict_rt fwd inputs).Irsim.Interp.result in
      Int64.bits_of_float a = Int64.bits_of_float b
      || (Float.is_nan a && Float.is_nan b))

(* ------------------------------------------------------------------ *)
(* Fastmath *)

let test_simplify_sub_self_nan () =
  let src = "void compute(double x) { double comp = 0.0; double bad = x / x; comp = bad - bad; }" in
  let ir = Irsim.Lower.program (parse src) in
  let fm = Irsim.Fastmath.run Irsim.Fastmath.gcc ir in
  let inputs = Irsim.Inputs.[ Fp 0.0 ] in
  let plain = (Irsim.Interp.run strict_rt ir inputs).Irsim.Interp.result in
  let fast = (Irsim.Interp.run strict_rt fm inputs).Irsim.Interp.result in
  check_bool "strict: NaN" true (Float.is_nan plain);
  check_float "fastmath folds x-x to 0" 0.0 fast

let test_simplify_div_self_differs_by_compiler () =
  let src = "void compute(double x) { double comp = 0.0; comp = x / x; }" in
  let ir = Irsim.Lower.program (parse src) in
  let gcc = Irsim.Fastmath.run Irsim.Fastmath.gcc ir in
  let clang = Irsim.Fastmath.run Irsim.Fastmath.clang ir in
  let inputs = Irsim.Inputs.[ Fp 0.0 ] in
  let g = (Irsim.Interp.run strict_rt gcc inputs).Irsim.Interp.result in
  let c = (Irsim.Interp.run strict_rt clang inputs).Irsim.Interp.result in
  check_float "gcc folds to 1" 1.0 g;
  check_bool "clang keeps the NaN" true (Float.is_nan c)

let test_recip_division () =
  let src = "void compute(double x, double y) { double comp = 0.0; comp = x / y; }" in
  let ir = Irsim.Lower.program (parse src) in
  let fm = Irsim.Fastmath.run Irsim.Fastmath.gcc ir in
  (* find a pair where x/y and x*(1/y) round differently *)
  let rng = Util.Rng.of_int 7 in
  let found = ref false in
  for _ = 1 to 200 do
    let x = Util.Rng.float_in rng 1.0 10.0 and y = Util.Rng.float_in rng 1.0 10.0 in
    let a = (Irsim.Interp.run strict_rt ir Irsim.Inputs.[ Fp x; Fp y ]).Irsim.Interp.result in
    let b = (Irsim.Interp.run strict_rt fm Irsim.Inputs.[ Fp x; Fp y ]).Irsim.Interp.result in
    if a <> b then found := true
  done;
  check_bool "reciprocal changes rounding somewhere" true !found

let test_reassoc_shapes_differ () =
  let src = "void compute(double a, double b, double c, double d, double e) { double comp = 0.0; comp = a + b + c + d + e; }" in
  let ir = Irsim.Lower.program (parse src) in
  let gcc = Irsim.Fastmath.run Irsim.Fastmath.gcc ir in
  let clang = Irsim.Fastmath.run Irsim.Fastmath.clang ir in
  let nvcc = Irsim.Fastmath.run Irsim.Fastmath.nvcc ir in
  let inputs =
    Irsim.Inputs.[ Fp 1.0; Fp 1e-16; Fp 1e-16; Fp 1e-16; Fp 1e-16 ]
  in
  let run ir = (Irsim.Interp.run strict_rt ir inputs).Irsim.Interp.result in
  let vals = [ run ir; run gcc; run clang; run nvcc ] in
  check_bool "at least two distinct sums" true
    (List.length (List.sort_uniq compare (List.map Int64.bits_of_float vals)) >= 2);
  (* nvcc keeps source order: identical to strict *)
  check_bool "nvcc flat = strict" true
    (Int64.bits_of_float (run ir) = Int64.bits_of_float (run nvcc))

let test_reassoc_overflow_crossing () =
  (* (huge + huge) + (-huge): balanced tree overflows, flat order survives *)
  let src = "void compute(double a, double b, double c, double d) { double comp = 0.0; comp = a + b + c + d; }" in
  let ir = Irsim.Lower.program (parse src) in
  let gcc = Irsim.Fastmath.run Irsim.Fastmath.gcc ir in
  let big = 1.2e308 in
  let inputs = Irsim.Inputs.[ Fp big; Fp big; Fp (-.big); Fp (-.big) ] in
  let strict = (Irsim.Interp.run strict_rt ir inputs).Irsim.Interp.result in
  let balanced = (Irsim.Interp.run strict_rt gcc inputs).Irsim.Interp.result in
  (* strict left-assoc: (((big+big) - big) - big) saturates at +inf and
     stays there; the balanced tree computes inf + (-inf) = NaN *)
  check_bool "strict saturates to +inf" true (strict = Float.infinity);
  check_bool "balanced reassociation yields NaN" true (Float.is_nan balanced)

(* ------------------------------------------------------------------ *)
(* DCE *)

let test_dce_removes_dead () =
  let src = {|
void compute(double x) {
  double comp = 0.0;
  double dead = x * 3.0;
  comp = x + 1.0;
}
|} in
  let ir = Irsim.Lower.program (parse src) in
  let swept = Irsim.Dce.run ir in
  check_int "store removed" 1 (List.length swept.Irsim.Ir.body)

let test_dce_keeps_live_chain () =
  let src = {|
void compute(double x) {
  double comp = 0.0;
  double a = x * 2.0;
  double b = a + 1.0;
  comp = b;
}
|} in
  let swept = Irsim.Dce.run (Irsim.Lower.program (parse src)) in
  check_int "all live" 3 (List.length swept.Irsim.Ir.body)

let test_dce_transitive () =
  (* a feeds b; both dead once b is unused *)
  let src = {|
void compute(double x) {
  double comp = 0.0;
  double a = x * 2.0;
  double b = a + 1.0;
  comp = x;
}
|} in
  let swept = Irsim.Dce.run (Irsim.Lower.program (parse src)) in
  check_int "chain removed transitively" 1 (List.length swept.Irsim.Ir.body)

let test_dce_terminates_on_nan_consts () =
  (* regression: NaN constants broke the structural-equality fixpoint *)
  let ir =
    { Irsim.Ir.precision = Ast.F64;
      n_fslots = 2;
      n_islots = 0;
      arr_lens = [||];
      bindings = [];
      body =
        [ Irsim.Ir.Store (1, Irsim.Ir.Const Float.nan);
          Irsim.Ir.Store (0, Irsim.Ir.Const Float.nan) ];
      comp_slot = 0 }
  in
  let swept = Irsim.Dce.run ir in
  check_int "dead NaN store removed, comp kept" 1 (List.length swept.Irsim.Ir.body)

let qcheck_dce_value_preserving =
  QCheck.Test.make ~name:"DCE preserves the printed result" ~count:200
    arbitrary_case (fun (p, inputs) ->
      let ir = Irsim.Lower.program p in
      let swept = Irsim.Dce.run ir in
      let a = (Irsim.Interp.run strict_rt ir inputs).Irsim.Interp.result in
      let b = (Irsim.Interp.run strict_rt swept inputs).Irsim.Interp.result in
      Int64.bits_of_float a = Int64.bits_of_float b
      || (Float.is_nan a && Float.is_nan b))

(* The full pipeline at strict settings is the identity on semantics:
   compiling at gcc O0_nofma must equal direct interpretation of the
   lowered program for any generated case. *)
let qcheck_strict_pipeline_is_identity =
  QCheck.Test.make ~name:"gcc 00_nofma semantics = plain interpretation"
    ~count:150 arbitrary_case (fun (p, inputs) ->
      let direct =
        (Irsim.Interp.run strict_rt (Irsim.Lower.program p) inputs)
          .Irsim.Interp.result
      in
      match
        Compiler.Driver.compile
          (Compiler.Config.make Compiler.Personality.Gcc
             Compiler.Optlevel.O0_nofma)
          p
      with
      | Error _ -> false
      | Ok bin ->
        let out = (Compiler.Driver.run bin inputs).Irsim.Interp.result in
        (* gcc folds const math calls even at 00_nofma; restrict the claim
           to bitwise equality OR both NaN when no const-call fold fired *)
        Int64.bits_of_float direct = Int64.bits_of_float out
        || (Float.is_nan direct && Float.is_nan out)
        || Lang.Ast.call_count p > 0)

let qcheck_contract_then_fastmath_stable =
  (* applying the same pass twice changes nothing the second time *)
  QCheck.Test.make ~name:"contraction is idempotent on results" ~count:150
    arbitrary_case (fun (p, inputs) ->
      let ir = Irsim.Lower.program p in
      let once = Irsim.Contract.run Irsim.Contract.Syntactic ir in
      let twice = Irsim.Contract.run Irsim.Contract.Syntactic once in
      let r1 = (Irsim.Interp.run strict_rt once inputs).Irsim.Interp.result in
      let r2 = (Irsim.Interp.run strict_rt twice inputs).Irsim.Interp.result in
      Int64.bits_of_float r1 = Int64.bits_of_float r2
      || (Float.is_nan r1 && Float.is_nan r2))

let () =
  Alcotest.run "irsim"
    [
      ( "lowering",
        [
          Alcotest.test_case "slot allocation" `Quick test_lower_slots;
          Alcotest.test_case "compound assign" `Quick test_lower_compound_assign;
          Alcotest.test_case "int promotion" `Quick test_lower_int_promotion;
        ] );
      ( "interp",
        [
          Alcotest.test_case "arithmetic" `Quick test_interp_arithmetic;
          Alcotest.test_case "loop accumulation" `Quick test_interp_loop_accumulation;
          Alcotest.test_case "branches" `Quick test_interp_branch;
          Alcotest.test_case "NaN comparisons" `Quick test_interp_nan_comparison;
          Alcotest.test_case "array writes" `Quick test_interp_array_writes;
          Alcotest.test_case "FTZ" `Quick test_interp_ftz;
          Alcotest.test_case "F32 rounding" `Quick test_interp_f32_rounding;
          Alcotest.test_case "op counting" `Quick test_interp_ops_counted;
          Alcotest.test_case "input mismatch" `Quick test_interp_input_mismatch;
        ] );
      ( "vm",
        [
          Alcotest.test_case "matches tree across runtimes" `Quick
            test_vm_matches_tree_all_runtimes;
          Alcotest.test_case "batch with divergent lanes" `Quick
            test_vm_batch_divergent_lanes;
          Alcotest.test_case "loop residual counter" `Quick
            test_vm_loop_residual_counter;
          Alcotest.test_case "trap matches tree" `Quick
            test_vm_trap_matches_tree;
          Alcotest.test_case "batch trap order" `Quick test_vm_batch_trap_order;
          Alcotest.test_case "flatten rejects bad IR" `Quick
            test_vm_flatten_rejects_bad_ir;
        ] );
      ( "fold",
        [
          Alcotest.test_case "arith folding" `Quick test_fold_arith;
          Alcotest.test_case "call folding on consts only" `Quick
            test_fold_calls_only_on_consts;
          QCheck_alcotest.to_alcotest qcheck_fold_arith_transparent;
        ] );
      ( "contract",
        [
          Alcotest.test_case "syntactic patterns" `Quick test_contract_syntactic_patterns;
          Alcotest.test_case "changes rounding" `Quick test_contract_changes_rounding;
          Alcotest.test_case "cross-statement (gcc vs clang)" `Quick
            test_cross_stmt_contraction;
          Alcotest.test_case "barrier respected" `Quick test_forward_blocked_by_redefinition;
          QCheck_alcotest.to_alcotest qcheck_forwarding_value_preserving;
        ] );
      ( "fastmath",
        [
          Alcotest.test_case "x-x with NaN" `Quick test_simplify_sub_self_nan;
          Alcotest.test_case "x/x per compiler" `Quick test_simplify_div_self_differs_by_compiler;
          Alcotest.test_case "reciprocal division" `Quick test_recip_division;
          Alcotest.test_case "reassociation shapes" `Quick test_reassoc_shapes_differ;
          Alcotest.test_case "overflow crossing" `Quick test_reassoc_overflow_crossing;
        ] );
      ( "dce",
        [
          Alcotest.test_case "removes dead" `Quick test_dce_removes_dead;
          Alcotest.test_case "keeps live chain" `Quick test_dce_keeps_live_chain;
          Alcotest.test_case "transitive" `Quick test_dce_transitive;
          Alcotest.test_case "NaN fixpoint regression" `Quick test_dce_terminates_on_nan_consts;
          QCheck_alcotest.to_alcotest qcheck_dce_value_preserving;
        ] );
      ( "pipeline",
        [
          QCheck_alcotest.to_alcotest qcheck_strict_pipeline_is_identity;
          QCheck_alcotest.to_alcotest qcheck_contract_then_fastmath_stable;
        ] );
    ]
