(* Tests for lib/report: table rendering and export. *)

open Helpers

let test_render_alignment () =
  let out =
    Report.Table.render ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "longer"; "23" ] ]
  in
  let lines = Util.Text.lines out in
  check_bool "header" true (List.nth lines 0 = "name    value");
  check_bool "separator" true (List.nth lines 1 = "------  -----");
  check_bool "right aligned number" true (List.nth lines 2 = "a           1");
  check_bool "no trailing spaces" true
    (List.for_all
       (fun l -> l = "" || l.[String.length l - 1] <> ' ')
       lines)

let test_render_title_and_padding () =
  let out =
    Report.Table.render ~title:"T" ~header:[ "a"; "b"; "c" ] [ [ "x" ] ]
  in
  let lines = Util.Text.lines out in
  check_string "title first" "T" (List.hd lines);
  check_bool "short row padded" true (List.length lines = 4)

let test_render_explicit_alignment () =
  let out =
    Report.Table.render ~header:[ "l"; "r" ]
      ~align:[ Report.Table.Right; Report.Table.Left ]
      [ [ "x"; "yy" ] ]
  in
  check_bool "right-aligns first col" true
    (Util.Text.contains_sub out "x  yy")

let test_pct () =
  check_string "two decimals" "26.56%" (Report.Table.pct 0.2656);
  check_string "one decimal" "26.6%" (Report.Table.pct1 0.2656);
  check_string "zero" "0.00%" (Report.Table.pct 0.0)

let test_commas () =
  check_string "small" "1" (Report.Table.commas 1);
  check_string "thousands" "4,781" (Report.Table.commas 4781);
  check_string "millions" "12,345,678" (Report.Table.commas 12345678);
  check_string "negative" "-1,000" (Report.Table.commas (-1000))

let test_csv () =
  let out =
    Report.Table.to_csv ~header:[ "a"; "b" ]
      [ [ "plain"; "with,comma" ]; [ "with\"quote"; "x" ] ]
  in
  check_string "csv"
    "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",x\n" out

let test_render_utf8_width () =
  (* shade glyphs are 3 UTF-8 bytes but 1 column: padding must count
     columns, or the heatmap grid shears *)
  let out =
    Report.Table.render ~header:[ "pair"; "n" ]
      [ [ "a"; "\xe2\x96\x91 1" ]; [ "b"; "\xc2\xb7" ] ]
  in
  let lines = Util.Text.lines out in
  check_bool "rows column-aligned despite multi-byte glyphs" true
    (List.for_all
       (fun l -> Util.Text.display_width l = Util.Text.display_width (List.nth lines 0))
       [ List.nth lines 2 ]);
  check_int "display_width counts codepoints" 3
    (Util.Text.display_width "\xe2\x96\x91 1")

let test_flightdeck_coverage_panel () =
  let base =
    { Report.Flightdeck.empty with
      Report.Flightdeck.approach = "LLM4FP"; budget = 10; seed = 1;
      precision = "fp64"; slots_done = 4; sim_s = 700.0 }
  in
  let frame = Report.Flightdeck.render base in
  check_bool "no ledger yet renders a dash" true
    (Util.Text.contains_sub frame "coverage    -");
  check_bool "no window, no plateau banner" false
    (Util.Text.contains_sub frame "plateau");
  let covered =
    { base with
      Report.Flightdeck.coverage_cells = 3; coverage_cross = 2;
      coverage_within = 1; coverage_hits = 7;
      novel_by_strategy = [ ("grammar", 2); ("mutate", 1) ];
      last_novel_sim_s = 50.0; coverage_window = 600.0 }
  in
  let frame = Report.Flightdeck.render covered in
  check_bool "cell counts on the panel" true
    (Util.Text.contains_sub frame "3 cells (cross 2, within 1)");
  check_bool "novelty by strategy" true
    (Util.Text.contains_sub frame "grammar 2");
  check_bool "quiet window trips the banner" true
    (Util.Text.contains_sub frame "plateau");
  let fresh = { covered with Report.Flightdeck.last_novel_sim_s = 650.0 } in
  check_bool "recent novelty clears the banner" false
    (Util.Text.contains_sub (Report.Flightdeck.render fresh) "plateau");
  check_string "render is pure" frame (Report.Flightdeck.render covered)

let test_analytics_heatmap () =
  check_int "zero shades to zero" 0 (Report.Analytics.shade_index ~max_n:4 0);
  check_int "max shades full" 4 (Report.Analytics.shade_index ~max_n:4 4);
  check_int "rounds up" 1 (Report.Analytics.shade_index ~max_n:4 1);
  let case fp pair level =
    { Report.Analytics.fingerprint = fp; kind = "cross"; pair; level;
      class_pair = "{Real, Real}"; digits = 1; slot = 1 }
  in
  let t =
    Report.Analytics.build
      [ case "a" "gcc, nvcc" "03"; case "b" "gcc, nvcc" "03";
        case "c" "gcc, clang" "01" ]
  in
  let header, rows = Report.Analytics.heatmap t in
  check_bool "header leads with the pair axis" true
    (List.hd header = "pair \\ level");
  check_bool "levels on the header" true
    (List.tl header = [ "01"; "03" ]);
  check_int "one row per pair" 2 (List.length rows);
  let flat = String.concat "|" (List.concat rows) in
  check_bool "dense cell uses the full shade" true
    (Util.Text.contains_sub flat "\xe2\x96\x88 2");
  check_bool "empty cell is a middle dot" true
    (Util.Text.contains_sub flat "\xc2\xb7")

let qcheck_render_line_count =
  QCheck.Test.make ~name:"render emits header + separator + one line per row"
    ~count:100
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 10) (string_of_size (QCheck.Gen.int_range 0 8)))
              small_nat)
    (fun (row, extra) ->
      QCheck.assume (row <> []);
      let row = List.map (String.map (fun c -> if c = '\n' then '.' else c)) row in
      let header = List.mapi (fun i _ -> Printf.sprintf "h%d" i) row in
      let rows = List.init (1 + (extra mod 5)) (fun _ -> row) in
      let out = Report.Table.render ~header rows in
      List.length (Util.Text.lines out) = 2 + List.length rows)

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_render_alignment;
          Alcotest.test_case "title and padding" `Quick test_render_title_and_padding;
          Alcotest.test_case "explicit alignment" `Quick test_render_explicit_alignment;
          Alcotest.test_case "percentages" `Quick test_pct;
          Alcotest.test_case "thousands" `Quick test_commas;
          Alcotest.test_case "csv export" `Quick test_csv;
          Alcotest.test_case "utf8 column width" `Quick test_render_utf8_width;
          QCheck_alcotest.to_alcotest qcheck_render_line_count;
        ] );
      ( "flightdeck",
        [
          Alcotest.test_case "coverage panel and plateau banner" `Quick
            test_flightdeck_coverage_panel;
        ] );
      ( "analytics",
        [
          Alcotest.test_case "heatmap" `Quick test_analytics_heatmap;
        ] );
    ]
