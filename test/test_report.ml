(* Tests for lib/report: table rendering and export. *)

open Helpers

let test_render_alignment () =
  let out =
    Report.Table.render ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "longer"; "23" ] ]
  in
  let lines = Util.Text.lines out in
  check_bool "header" true (List.nth lines 0 = "name    value");
  check_bool "separator" true (List.nth lines 1 = "------  -----");
  check_bool "right aligned number" true (List.nth lines 2 = "a           1");
  check_bool "no trailing spaces" true
    (List.for_all
       (fun l -> l = "" || l.[String.length l - 1] <> ' ')
       lines)

let test_render_title_and_padding () =
  let out =
    Report.Table.render ~title:"T" ~header:[ "a"; "b"; "c" ] [ [ "x" ] ]
  in
  let lines = Util.Text.lines out in
  check_string "title first" "T" (List.hd lines);
  check_bool "short row padded" true (List.length lines = 4)

let test_render_explicit_alignment () =
  let out =
    Report.Table.render ~header:[ "l"; "r" ]
      ~align:[ Report.Table.Right; Report.Table.Left ]
      [ [ "x"; "yy" ] ]
  in
  check_bool "right-aligns first col" true
    (Util.Text.contains_sub out "x  yy")

let test_pct () =
  check_string "two decimals" "26.56%" (Report.Table.pct 0.2656);
  check_string "one decimal" "26.6%" (Report.Table.pct1 0.2656);
  check_string "zero" "0.00%" (Report.Table.pct 0.0)

let test_commas () =
  check_string "small" "1" (Report.Table.commas 1);
  check_string "thousands" "4,781" (Report.Table.commas 4781);
  check_string "millions" "12,345,678" (Report.Table.commas 12345678);
  check_string "negative" "-1,000" (Report.Table.commas (-1000))

let test_csv () =
  let out =
    Report.Table.to_csv ~header:[ "a"; "b" ]
      [ [ "plain"; "with,comma" ]; [ "with\"quote"; "x" ] ]
  in
  check_string "csv"
    "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",x\n" out

let qcheck_render_line_count =
  QCheck.Test.make ~name:"render emits header + separator + one line per row"
    ~count:100
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 10) (string_of_size (QCheck.Gen.int_range 0 8)))
              small_nat)
    (fun (row, extra) ->
      QCheck.assume (row <> []);
      let row = List.map (String.map (fun c -> if c = '\n' then '.' else c)) row in
      let header = List.mapi (fun i _ -> Printf.sprintf "h%d" i) row in
      let rows = List.init (1 + (extra mod 5)) (fun _ -> row) in
      let out = Report.Table.render ~header rows in
      List.length (Util.Text.lines out) = 2 + List.length rows)

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_render_alignment;
          Alcotest.test_case "title and padding" `Quick test_render_title_and_padding;
          Alcotest.test_case "explicit alignment" `Quick test_render_explicit_alignment;
          Alcotest.test_case "percentages" `Quick test_pct;
          Alcotest.test_case "thousands" `Quick test_commas;
          Alcotest.test_case "csv export" `Quick test_csv;
          QCheck_alcotest.to_alcotest qcheck_render_line_count;
        ] );
    ]
