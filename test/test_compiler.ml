(* Tests for lib/compiler: policy matrix, driver, execution. *)

open Helpers

let all_configs = Compiler.Config.all ()

let arbitrary_case =
  QCheck.make
    ~print:(fun (p, _) -> Lang.Pp.to_c p)
    (QCheck.Gen.map
       (fun seed -> Gen.Varity.gen_case (Util.Rng.of_int seed))
       QCheck.Gen.int)

(* ------------------------------------------------------------------ *)
(* Policy matrix (the DESIGN.md table) *)

let test_matrix_size () =
  check_int "3 compilers x 6 levels" 18 (List.length all_configs)

let test_nofma_never_contracts () =
  Array.iter
    (fun p ->
      let cfg = Compiler.Config.make p Compiler.Optlevel.O0_nofma in
      check_bool "no contraction at 00_nofma" true
        (cfg.Compiler.Config.contract = Irsim.Contract.No_contract))
    Compiler.Personality.all

let test_nvcc_contracts_by_default () =
  List.iter
    (fun level ->
      let cfg = Compiler.Config.make Compiler.Personality.Nvcc level in
      check_bool "nvcc -fmad=true" true
        (cfg.Compiler.Config.contract = Irsim.Contract.Syntactic))
    [ Compiler.Optlevel.O0; Compiler.Optlevel.O1; Compiler.Optlevel.O2;
      Compiler.Optlevel.O3; Compiler.Optlevel.O3_fastmath ]

let test_host_contraction_policies () =
  let gcc = Compiler.Config.make Compiler.Personality.Gcc Compiler.Optlevel.O2 in
  let clang = Compiler.Config.make Compiler.Personality.Clang Compiler.Optlevel.O2 in
  let gcc_o0 = Compiler.Config.make Compiler.Personality.Gcc Compiler.Optlevel.O0 in
  check_bool "gcc cross-statement" true
    (gcc.Compiler.Config.contract = Irsim.Contract.Cross_stmt);
  check_bool "clang syntactic" true
    (clang.Compiler.Config.contract = Irsim.Contract.Syntactic);
  check_bool "no host contraction at O0" true
    (gcc_o0.Compiler.Config.contract = Irsim.Contract.No_contract)

let test_fold_policies () =
  let fold p level =
    (Compiler.Config.make p level).Compiler.Config.fold.Irsim.Fold.fold_calls
  in
  check_bool "gcc folds with mpfr at every level" true
    (List.for_all
       (fun l -> fold Compiler.Personality.Gcc l = Some Mathlib.Libm.Mpfr_fold)
       (Array.to_list Compiler.Optlevel.all));
  check_bool "clang folds only when optimizing" true
    (fold Compiler.Personality.Clang Compiler.Optlevel.O0 = None
    && fold Compiler.Personality.Clang Compiler.Optlevel.O1
       = Some Mathlib.Libm.Llvm_fold);
  check_bool "nvcc never folds divergently" true
    (List.for_all
       (fun l -> fold Compiler.Personality.Nvcc l = None)
       (Array.to_list Compiler.Optlevel.all))

let test_fastmath_configs () =
  List.iter
    (fun (cfg : Compiler.Config.t) ->
      let is_fm = cfg.level = Compiler.Optlevel.O3_fastmath in
      check_bool "fastmath iff ftz" true (is_fm = cfg.ftz);
      check_bool "fastmath iff rewrites" true (is_fm = (cfg.fastmath <> None)))
    all_configs

let test_fastmath_libm_flavors () =
  let libm p = (Compiler.Config.make p Compiler.Optlevel.O3_fastmath).Compiler.Config.libm in
  check_bool "gcc fast libm" true (libm Compiler.Personality.Gcc = Mathlib.Libm.Gcc_fast);
  check_bool "clang fast libm" true (libm Compiler.Personality.Clang = Mathlib.Libm.Clang_fast);
  check_bool "cuda fast libm" true (libm Compiler.Personality.Nvcc = Mathlib.Libm.Cuda_fast)

let test_precise_libm_flavors () =
  let libm p = (Compiler.Config.make p Compiler.Optlevel.O2).Compiler.Config.libm in
  check_bool "hosts share glibc" true
    (libm Compiler.Personality.Gcc = Mathlib.Libm.Glibc
    && libm Compiler.Personality.Clang = Mathlib.Libm.Glibc);
  check_bool "device links cuda libm" true
    (libm Compiler.Personality.Nvcc = Mathlib.Libm.Cuda)

let test_nan_cmp_policy () =
  let taken p = (Compiler.Config.make p Compiler.Optlevel.O3_fastmath).Compiler.Config.nan_cmp_taken in
  check_bool "gcc flips" true (taken Compiler.Personality.Gcc);
  check_bool "nvcc flips" true (taken Compiler.Personality.Nvcc);
  check_bool "clang keeps IEEE" false (taken Compiler.Personality.Clang);
  check_bool "never outside fastmath" true
    (List.for_all
       (fun (cfg : Compiler.Config.t) ->
         cfg.Compiler.Config.level = Compiler.Optlevel.O3_fastmath
         || not cfg.Compiler.Config.nan_cmp_taken)
       all_configs)

let test_config_names () =
  let cfg = Compiler.Config.make Compiler.Personality.Gcc Compiler.Optlevel.O3_fastmath in
  Alcotest.(check string) "flag rendering" "gcc -O3 -ffast-math" (Compiler.Config.name cfg);
  let cfg = Compiler.Config.make Compiler.Personality.Nvcc Compiler.Optlevel.O0_nofma in
  Alcotest.(check string) "nvcc flags" "nvcc -O0 -fmad=false" (Compiler.Config.name cfg)

(* ------------------------------------------------------------------ *)
(* Driver *)

let simple = {|
void compute(double x, double y) {
  double comp = 0.0;
  comp = x * y + 1.0;
}
|}

let test_compile_succeeds_everywhere () =
  let p = parse simple in
  List.iter
    (fun cfg ->
      match Compiler.Driver.compile cfg p with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "compile failed: %s" msg)
    all_configs

let test_device_path_is_cuda () =
  let p = parse simple in
  let cfg = Compiler.Config.make Compiler.Personality.Nvcc Compiler.Optlevel.O0 in
  match Compiler.Driver.compile cfg p with
  | Ok bin ->
    check_bool "kernel marker" true
      (Util.Text.contains_sub bin.Compiler.Driver.source "__global__");
    check_bool "launch syntax" true
      (Util.Text.contains_sub bin.Compiler.Driver.source "<<<1, 1>>>")
  | Error msg -> Alcotest.fail msg

let test_host_path_is_c () =
  let p = parse simple in
  let cfg = Compiler.Config.make Compiler.Personality.Gcc Compiler.Optlevel.O0 in
  match Compiler.Driver.compile cfg p with
  | Ok bin ->
    check_bool "no kernel marker" false
      (Util.Text.contains_sub bin.Compiler.Driver.source "__global__")
  | Error msg -> Alcotest.fail msg

let test_compile_rejects_invalid () =
  let invalid = "void compute(double x) { double comp = 0.0; comp = y; }" in
  match Cparse.Parse.program invalid with
  | Error _ -> Alcotest.fail "should parse"
  | Ok p ->
    let cfg = Compiler.Config.make Compiler.Personality.Gcc Compiler.Optlevel.O0 in
    check_bool "validator rejects" true (Result.is_error (Compiler.Driver.compile cfg p))

let test_run_deterministic () =
  let p = parse simple in
  let cfg = Compiler.Config.make Compiler.Personality.Nvcc Compiler.Optlevel.O3_fastmath in
  match Compiler.Driver.compile cfg p with
  | Error m -> Alcotest.fail m
  | Ok bin ->
    let inputs = Irsim.Inputs.[ Fp 1.25; Fp (-0.75) ] in
    Alcotest.(check string) "same hex twice"
      (Compiler.Driver.run_hex bin inputs)
      (Compiler.Driver.run_hex bin inputs)

let test_o2_equals_o3 () =
  (* our model adds no FP-visible transform between O2 and O3 *)
  let rng = Util.Rng.of_int 31337 in
  for _ = 1 to 30 do
    let p, inputs = Gen.Varity.gen_case rng in
    Array.iter
      (fun personality ->
        let c2 = Compiler.Config.make personality Compiler.Optlevel.O2 in
        let c3 = Compiler.Config.make personality Compiler.Optlevel.O3 in
        match (Compiler.Driver.compile c2 p, Compiler.Driver.compile c3 p) with
        | Ok b2, Ok b3 ->
          Alcotest.(check string) "O2 = O3"
            (Compiler.Driver.run_hex b2 inputs)
            (Compiler.Driver.run_hex b3 inputs)
        | _ -> Alcotest.fail "compile failed")
      Compiler.Personality.all
  done

let test_hosts_agree_without_calls_and_consts () =
  (* a call-free, constant-fold-free program must agree between gcc and
     clang at the strictest level *)
  let src = {|
void compute(double x, double y) {
  double comp = 0.0;
  comp = x * y + x / y - x;
}
|} in
  let p = parse src in
  let gcc = Compiler.Config.make Compiler.Personality.Gcc Compiler.Optlevel.O0_nofma in
  let clang = Compiler.Config.make Compiler.Personality.Clang Compiler.Optlevel.O0_nofma in
  match (Compiler.Driver.compile gcc p, Compiler.Driver.compile clang p) with
  | Ok bg, Ok bc ->
    let inputs = Irsim.Inputs.[ Fp 3.7; Fp (-0.2) ] in
    Alcotest.(check string) "bitwise equal"
      (Compiler.Driver.run_hex bg inputs)
      (Compiler.Driver.run_hex bc inputs)
  | _ -> Alcotest.fail "compile failed"

let test_nvcc_fastmath_precision_dependent () =
  (* -use_fast_math's extra flags are single-precision-only: for an FP64
     program nvcc's fastmath build equals its -O3 build, while for FP32
     the intrinsics genuinely apply *)
  let src64 = {|
void compute(double x) {
  double comp = 0.0;
  comp = sin(x) / (1.0 + x * x);
}
|} in
  let src32 = {|
void compute(float x) {
  float comp = 0.0;
  comp = sinf(x) / (1.0 + x * x);
}
|} in
  let nvcc level = Compiler.Config.make Compiler.Personality.Nvcc level in
  let hex src level inputs =
    match Compiler.Driver.compile (nvcc level) (parse src) with
    | Ok bin -> Compiler.Driver.run_hex bin inputs
    | Error m -> Alcotest.fail m
  in
  (* FP64: fastmath == O3 on every input we try *)
  let rng = Util.Rng.of_int 404 in
  for _ = 1 to 50 do
    let x = Util.Rng.float_in rng (-10.0) 10.0 in
    Alcotest.(check string) "fp64 fastmath = O3"
      (hex src64 Compiler.Optlevel.O3 Irsim.Inputs.[ Fp x ])
      (hex src64 Compiler.Optlevel.O3_fastmath Irsim.Inputs.[ Fp x ])
  done;
  (* FP32: the intrinsics diverge somewhere *)
  let differs = ref false in
  for _ = 1 to 50 do
    let x = Util.Rng.float_in rng (-10.0) 10.0 in
    if
      hex src32 Compiler.Optlevel.O3 Irsim.Inputs.[ Fp x ]
      <> hex src32 Compiler.Optlevel.O3_fastmath Irsim.Inputs.[ Fp x ]
    then differs := true
  done;
  check_bool "fp32 fastmath uses intrinsics" true !differs

let test_matrix_matches_independent_compiles () =
  (* The shared front-end cache must be invisible: a [matrix] over the
     full 18-configuration list — at any job count — produces binaries
     byte-identical to 18 independent [compile] calls. *)
  let p = parse simple in
  let independent =
    List.map
      (fun cfg ->
        match Compiler.Driver.compile cfg p with
        | Ok bin -> bin
        | Error msg -> Alcotest.failf "compile failed: %s" msg)
      all_configs
  in
  let via_matrix jobs =
    List.map
      (function
        | Either.Left (_, bin) -> bin
        | Either.Right (cfg, msg) ->
          Alcotest.failf "matrix failed at %s: %s" (Compiler.Config.name cfg) msg)
      (Compiler.Driver.matrix ~jobs p)
  in
  let check_same label cached =
    List.iter2
      (fun (a : Compiler.Driver.binary) (b : Compiler.Driver.binary) ->
        Alcotest.(check string)
          (label ^ ": same config")
          (Compiler.Config.name a.config) (Compiler.Config.name b.config);
        Alcotest.(check string)
          (label ^ ": same translation unit")
          a.source b.source;
        check_bool (label ^ ": same optimized IR") true
          (Irsim.Ir.equal a.ir b.ir);
        check_int (label ^ ": same work") a.work b.work)
      independent cached
  in
  check_same "jobs=1" (via_matrix 1);
  check_same "jobs=4" (via_matrix 4)

let test_frontend_cache_two_runs () =
  (* 18 configurations touch exactly two translation units (host C,
     device CUDA): 2 front-end runs, 16 cache hits, at any job count. *)
  let runs = Obs.Metrics.counter "compiler.frontend.runs" in
  let hits = Obs.Metrics.counter "compiler.frontend.cache_hits" in
  List.iter
    (fun jobs ->
      let p = parse simple in
      let runs0 = Obs.Metrics.counter_value runs in
      let hits0 = Obs.Metrics.counter_value hits in
      ignore (Compiler.Driver.matrix ~jobs p);
      check_int "front end ran twice" 2 (Obs.Metrics.counter_value runs - runs0);
      check_int "16 cache hits" 16 (Obs.Metrics.counter_value hits - hits0))
    [ 1; 4 ]

let qcheck_matrix_compiles_varity =
  QCheck.Test.make ~name:"every Varity program compiles everywhere" ~count:100
    arbitrary_case (fun (p, _) ->
      List.for_all
        (fun r -> match r with Either.Left _ -> true | Either.Right _ -> false)
        (Compiler.Driver.matrix p))

let qcheck_work_positive =
  QCheck.Test.make ~name:"binaries carry positive work estimates" ~count:50
    arbitrary_case (fun (p, _) ->
      List.for_all
        (function
          | Either.Left (_, (b : Compiler.Driver.binary)) -> b.work > 0
          | Either.Right _ -> false)
        (Compiler.Driver.matrix p))

let () =
  Alcotest.run "compiler"
    [
      ( "policy",
        [
          Alcotest.test_case "matrix size" `Quick test_matrix_size;
          Alcotest.test_case "00_nofma no contraction" `Quick test_nofma_never_contracts;
          Alcotest.test_case "nvcc default fmad" `Quick test_nvcc_contracts_by_default;
          Alcotest.test_case "host contraction" `Quick test_host_contraction_policies;
          Alcotest.test_case "fold policies" `Quick test_fold_policies;
          Alcotest.test_case "fastmath configs" `Quick test_fastmath_configs;
          Alcotest.test_case "fastmath libm" `Quick test_fastmath_libm_flavors;
          Alcotest.test_case "precise libm" `Quick test_precise_libm_flavors;
          Alcotest.test_case "nan compare policy" `Quick test_nan_cmp_policy;
          Alcotest.test_case "config names" `Quick test_config_names;
        ] );
      ( "driver",
        [
          Alcotest.test_case "compiles everywhere" `Quick test_compile_succeeds_everywhere;
          Alcotest.test_case "device path is CUDA" `Quick test_device_path_is_cuda;
          Alcotest.test_case "host path is C" `Quick test_host_path_is_c;
          Alcotest.test_case "rejects invalid" `Quick test_compile_rejects_invalid;
          Alcotest.test_case "deterministic runs" `Quick test_run_deterministic;
          Alcotest.test_case "O2 equals O3" `Quick test_o2_equals_o3;
          Alcotest.test_case "hosts agree on pure arithmetic" `Quick
            test_hosts_agree_without_calls_and_consts;
          Alcotest.test_case "nvcc fastmath precision" `Quick
            test_nvcc_fastmath_precision_dependent;
          Alcotest.test_case "matrix matches independent compiles" `Quick
            test_matrix_matches_independent_compiles;
          Alcotest.test_case "front-end cache: 2 runs, 16 hits" `Quick
            test_frontend_cache_two_runs;
          QCheck_alcotest.to_alcotest qcheck_matrix_compiles_varity;
          QCheck_alcotest.to_alcotest qcheck_work_positive;
        ] );
    ]
