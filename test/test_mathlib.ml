(* Tests for lib/mathlib: reference semantics, vendor perturbation,
   fast-math polynomial kernels, dispatch. *)

open Lang
open Helpers

let all_flavors =
  [ Mathlib.Libm.Glibc; Mathlib.Libm.Mpfr_fold; Mathlib.Libm.Llvm_fold;
    Mathlib.Libm.Cuda; Mathlib.Libm.Gcc_fast; Mathlib.Libm.Clang_fast;
    Mathlib.Libm.Cuda_fast ]

(* ------------------------------------------------------------------ *)
(* Reference *)

let test_reference_matches_stdlib () =
  check_bool "sin" true (Mathlib.Reference.eval1 Ast.Sin 1.3 = sin 1.3);
  check_bool "pow" true (Mathlib.Reference.eval2 Ast.Pow 2.0 10.0 = 1024.0);
  check_bool "fmod" true (Mathlib.Reference.eval2 Ast.Fmod 7.5 2.0 = 1.5);
  check_bool "fmin NaN" true (Mathlib.Reference.eval2 Ast.Fmin Float.nan 3.0 = 3.0)

let test_reference_arity_errors () =
  check_bool "eval1 on pow raises" true
    (try ignore (Mathlib.Reference.eval1 Ast.Pow 1.0); false
     with Invalid_argument _ -> true);
  check_bool "eval arity mismatch raises" true
    (try ignore (Mathlib.Reference.eval Ast.Sin [ 1.0; 2.0 ]); false
     with Invalid_argument _ -> true)

let test_exactly_rounded_set () =
  check_bool "sqrt exact" true (Mathlib.Reference.is_exactly_rounded Ast.Sqrt);
  check_bool "fabs exact" true (Mathlib.Reference.is_exactly_rounded Ast.Fabs);
  check_bool "sin inexact" false (Mathlib.Reference.is_exactly_rounded Ast.Sin);
  check_bool "pow inexact" false (Mathlib.Reference.is_exactly_rounded Ast.Pow)

(* ------------------------------------------------------------------ *)
(* Perturb *)

let profile = Mathlib.Perturb.profile ~salt:0xABCDL ~prob:0.5 ~max_ulps:2

let test_perturb_deterministic () =
  let a = Mathlib.Perturb.apply profile Ast.Sin [ 1.7 ] (sin 1.7) in
  let b = Mathlib.Perturb.apply profile Ast.Sin [ 1.7 ] (sin 1.7) in
  check_bool "same args same nudge" true (a = b)

let test_perturb_bounded () =
  let rng = Util.Rng.of_int 99 in
  for _ = 1 to 2000 do
    let x = Util.Rng.float_in rng (-20.0) 20.0 in
    let base = sin x in
    let nudged = Mathlib.Perturb.apply profile Ast.Sin [ x ] base in
    check_bool "within max_ulps" true (Fp.Bits.ulp_distance base nudged <= 2L)
  done

let test_perturb_rate () =
  let rng = Util.Rng.of_int 100 in
  let hits = ref 0 in
  let n = 5000 in
  for _ = 1 to n do
    let x = Util.Rng.float_in rng (-20.0) 20.0 in
    let base = cos x in
    if Mathlib.Perturb.apply profile Ast.Cos [ x ] base <> base then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check_bool "rate near configured 0.5" true (Float.abs (rate -. 0.5) < 0.05)

let test_perturb_skips_exact_and_special () =
  check_bool "sqrt untouched" true
    (Mathlib.Perturb.apply profile Ast.Sqrt [ 2.0 ] (sqrt 2.0) = sqrt 2.0);
  check_bool "nan untouched" true
    (Float.is_nan (Mathlib.Perturb.apply profile Ast.Sin [ Float.nan ] Float.nan));
  check_bool "zero untouched" true
    (Mathlib.Perturb.apply profile Ast.Sin [ 0.0 ] 0.0 = 0.0)

let test_salts_decorrelated () =
  let p1 = Mathlib.Perturb.profile ~salt:1L ~prob:0.5 ~max_ulps:1 in
  let p2 = Mathlib.Perturb.profile ~salt:2L ~prob:0.5 ~max_ulps:1 in
  let rng = Util.Rng.of_int 101 in
  let agree = ref 0 and n = 2000 in
  for _ = 1 to n do
    let x = Util.Rng.float_in rng (-20.0) 20.0 in
    let base = sin x in
    let a = Mathlib.Perturb.apply p1 Ast.Sin [ x ] base <> base in
    let b = Mathlib.Perturb.apply p2 Ast.Sin [ x ] base <> base in
    if a = b then incr agree
  done;
  (* independent coins agree about half the time *)
  let rate = float_of_int !agree /. float_of_int n in
  check_bool "salts independent" true (rate > 0.4 && rate < 0.6)

(* ------------------------------------------------------------------ *)
(* Poly (fast kernels) *)

(* Mixed absolute/relative error: near the zeros of sin/log the relative
   error of any polynomial kernel blows up, so accuracy is judged against
   max(|exact|, 0.01) — the standard metric for fast trig. *)
let rel_err a b = Float.abs (a -. b) /. Float.max (Float.abs b) 0.01

let sweep ~lo ~hi ~f ~reference ~tolerance name =
  let rng = Util.Rng.of_int 500 in
  for _ = 1 to 3000 do
    let x = Util.Rng.float_in rng lo hi in
    let approx = f x and exact = reference x in
    if Float.is_finite exact then
      if rel_err approx exact > tolerance then
        Alcotest.failf "%s: x=%h approx=%h exact=%h" name x approx exact
  done

let test_poly_sin () =
  sweep ~lo:(-30.0) ~hi:30.0 ~f:Mathlib.Poly.sin_fast ~reference:sin
    ~tolerance:1e-8 "sin_fast"

let test_poly_cos () =
  sweep ~lo:(-30.0) ~hi:30.0 ~f:Mathlib.Poly.cos_fast ~reference:cos
    ~tolerance:1e-8 "cos_fast"

let test_poly_exp () =
  sweep ~lo:(-50.0) ~hi:50.0 ~f:Mathlib.Poly.exp_fast ~reference:exp
    ~tolerance:1e-9 "exp_fast"

let test_poly_log () =
  sweep ~lo:1e-6 ~hi:1e6 ~f:Mathlib.Poly.log_fast ~reference:log
    ~tolerance:5e-8 "log_fast"

let test_poly_log2 () =
  sweep ~lo:1e-6 ~hi:1e6 ~f:Mathlib.Poly.log2_fast ~reference:Float.log2
    ~tolerance:5e-8 "log2_fast"

let test_poly_pow () =
  let rng = Util.Rng.of_int 501 in
  for _ = 1 to 2000 do
    let x = Util.Rng.float_in rng 0.01 100.0 in
    let y = Util.Rng.float_in rng (-5.0) 5.0 in
    let approx = Mathlib.Poly.pow_fast x y and exact = Float.pow x y in
    check_bool "pow_fast accuracy" true (rel_err approx exact < 1e-7)
  done

let test_poly_differs_from_exact () =
  (* the kernels must genuinely diverge in the last ulps somewhere *)
  let rng = Util.Rng.of_int 502 in
  let diff = ref 0 in
  for _ = 1 to 1000 do
    let x = Util.Rng.float_in rng (-10.0) 10.0 in
    if Mathlib.Poly.sin_fast x <> sin x then incr diff
  done;
  check_bool "fast sin differs from precise often" true (!diff > 300)

let test_poly_specials () =
  check_bool "sin nan" true (Float.is_nan (Mathlib.Poly.sin_fast Float.nan));
  check_bool "exp overflow" true (Mathlib.Poly.exp_fast 1000.0 = Float.infinity);
  check_bool "exp underflow" true (Mathlib.Poly.exp_fast (-1000.0) = 0.0);
  check_bool "log of negative" true (Float.is_nan (Mathlib.Poly.log_fast (-1.0)));
  check_bool "log of zero" true (Mathlib.Poly.log_fast 0.0 = Float.neg_infinity);
  check_bool "pow negative base" true (Float.is_nan (Mathlib.Poly.pow_fast (-2.0) 3.0));
  check_bool "pow zero exponent" true (Mathlib.Poly.pow_fast 5.0 0.0 = 1.0)

(* ------------------------------------------------------------------ *)
(* Libm dispatch *)

let test_exact_fns_identical_everywhere () =
  let rng = Util.Rng.of_int 600 in
  for _ = 1 to 500 do
    let x = Util.Rng.float_in rng 0.0 100.0 in
    let reference = sqrt x in
    List.iter
      (fun flavor ->
        check_bool "sqrt identical across vendors" true
          (Mathlib.Libm.call1 flavor Ast.Sqrt x = reference))
      all_flavors
  done

let test_glibc_is_baseline () =
  check_bool "glibc = reference" true
    (Mathlib.Libm.call1 Mathlib.Libm.Glibc Ast.Sin 0.7 = sin 0.7)

let test_cuda_diverges_sometimes () =
  let rng = Util.Rng.of_int 601 in
  let diff = ref 0 in
  for _ = 1 to 2000 do
    let x = Util.Rng.float_in rng (-20.0) 20.0 in
    if
      Mathlib.Libm.call1 Mathlib.Libm.Cuda Ast.Sin x
      <> Mathlib.Libm.call1 Mathlib.Libm.Glibc Ast.Sin x
    then incr diff
  done;
  check_bool "cuda diverges on some args" true (!diff > 100);
  check_bool "cuda agrees on most magnitude" true (!diff < 1800)

let test_cuda_deterministic () =
  check_bool "same value both calls" true
    (Mathlib.Libm.call1 Mathlib.Libm.Cuda Ast.Exp 3.21
    = Mathlib.Libm.call1 Mathlib.Libm.Cuda Ast.Exp 3.21)

let test_fast_minmax_nan_semantics () =
  let open Mathlib.Libm in
  (* precise: NaN is "missing data" *)
  check_bool "precise fmin(nan, 3) = 3" true (call2 Glibc Ast.Fmin Float.nan 3.0 = 3.0);
  (* gcc fast: a < b ? a : b -> NaN compares false -> returns b *)
  check_bool "gcc-fast fmin(nan, 3) = 3" true
    (call2 Gcc_fast Ast.Fmin Float.nan 3.0 = 3.0);
  check_bool "gcc-fast fmin(3, nan) = nan" true
    (Float.is_nan (call2 Gcc_fast Ast.Fmin 3.0 Float.nan));
  (* clang fast: b < a ? b : a -> returns a *)
  check_bool "clang-fast fmin(nan, 3) = nan" true
    (Float.is_nan (call2 Clang_fast Ast.Fmin Float.nan 3.0));
  (* the two host fast-math lowerings disagree under NaN *)
  check_bool "gcc/clang disagree on NaN" true
    (Float.is_nan (call2 Clang_fast Ast.Fmax Float.nan 1.0)
    && not (Float.is_nan (call2 Gcc_fast Ast.Fmax Float.nan 1.0)))

let test_fast_minmax_agree_on_numbers () =
  let rng = Util.Rng.of_int 602 in
  for _ = 1 to 500 do
    let a = Util.Rng.float_in rng (-50.0) 50.0 in
    let b = Util.Rng.float_in rng (-50.0) 50.0 in
    let reference = Float.min_num a b in
    check_bool "gcc fast fmin on numbers" true
      (Mathlib.Libm.call2 Mathlib.Libm.Gcc_fast Ast.Fmin a b = reference);
    check_bool "clang fast fmin on numbers" true
      (Mathlib.Libm.call2 Mathlib.Libm.Clang_fast Ast.Fmin a b = reference)
  done

let test_cuda_fast_uses_poly () =
  check_bool "cuda fast sin = poly sin" true
    (Mathlib.Libm.call1 Mathlib.Libm.Cuda_fast Ast.Sin 1.234
    = Mathlib.Poly.sin_fast 1.234)

let test_f32_divergence_survives_rounding () =
  (* on the F32 grid the nudges must remain visible after rounding to
     single precision; on the F64 grid they must mostly vanish *)
  let rng = Util.Rng.of_int 603 in
  let to32 x = Int32.float_of_bits (Int32.bits_of_float x) in
  let diff64 = ref 0 and diff32 = ref 0 and n = 2000 in
  for _ = 1 to n do
    let x = to32 (Util.Rng.float_in rng (-20.0) 20.0) in
    let reference = to32 (sin x) in
    let a64 = to32 (Mathlib.Libm.call1 ~precision:Lang.Ast.F64 Mathlib.Libm.Cuda Ast.Sin x) in
    let a32 = to32 (Mathlib.Libm.call1 ~precision:Lang.Ast.F32 Mathlib.Libm.Cuda Ast.Sin x) in
    if a64 <> reference then incr diff64;
    if a32 <> reference then incr diff32
  done;
  check_bool "f32-grid divergence visible" true (!diff32 > 300);
  check_bool "f64-grid nudges vanish in f32" true (!diff64 < !diff32 / 4)

let test_cuda_fast32_intrinsic_error () =
  let to32 x = Int32.float_of_bits (Int32.bits_of_float x) in
  let rng = Util.Rng.of_int 604 in
  let diff = ref 0 and n = 1000 in
  for _ = 1 to n do
    let x = to32 (Util.Rng.float_in rng (-8.0) 8.0) in
    let fast = to32 (Mathlib.Libm.call1 ~precision:Lang.Ast.F32 Mathlib.Libm.Cuda_fast Ast.Sin x) in
    if fast <> to32 (sin x) then incr diff
  done;
  check_bool "float intrinsics carry error" true (!diff > 300)

let test_flavor_names_distinct () =
  let names = List.map Mathlib.Libm.flavor_name all_flavors in
  Alcotest.(check int) "distinct names" (List.length names)
    (List.length (List.sort_uniq compare names))

let () =
  Alcotest.run "mathlib"
    [
      ( "reference",
        [
          Alcotest.test_case "matches stdlib" `Quick test_reference_matches_stdlib;
          Alcotest.test_case "arity errors" `Quick test_reference_arity_errors;
          Alcotest.test_case "exactly-rounded set" `Quick test_exactly_rounded_set;
        ] );
      ( "perturb",
        [
          Alcotest.test_case "deterministic" `Quick test_perturb_deterministic;
          Alcotest.test_case "bounded" `Quick test_perturb_bounded;
          Alcotest.test_case "rate" `Quick test_perturb_rate;
          Alcotest.test_case "skips exact/special" `Quick test_perturb_skips_exact_and_special;
          Alcotest.test_case "salts decorrelated" `Quick test_salts_decorrelated;
        ] );
      ( "poly",
        [
          Alcotest.test_case "sin accuracy" `Quick test_poly_sin;
          Alcotest.test_case "cos accuracy" `Quick test_poly_cos;
          Alcotest.test_case "exp accuracy" `Quick test_poly_exp;
          Alcotest.test_case "log accuracy" `Quick test_poly_log;
          Alcotest.test_case "log2 accuracy" `Quick test_poly_log2;
          Alcotest.test_case "pow accuracy" `Quick test_poly_pow;
          Alcotest.test_case "genuinely different" `Quick test_poly_differs_from_exact;
          Alcotest.test_case "special values" `Quick test_poly_specials;
        ] );
      ( "libm",
        [
          Alcotest.test_case "exact fns identical" `Quick test_exact_fns_identical_everywhere;
          Alcotest.test_case "glibc baseline" `Quick test_glibc_is_baseline;
          Alcotest.test_case "cuda diverges sometimes" `Quick test_cuda_diverges_sometimes;
          Alcotest.test_case "cuda deterministic" `Quick test_cuda_deterministic;
          Alcotest.test_case "fast min/max NaN" `Quick test_fast_minmax_nan_semantics;
          Alcotest.test_case "fast min/max numbers" `Quick test_fast_minmax_agree_on_numbers;
          Alcotest.test_case "cuda fast = poly" `Quick test_cuda_fast_uses_poly;
          Alcotest.test_case "f32 grid divergence" `Quick test_f32_divergence_survives_rounding;
          Alcotest.test_case "f32 intrinsic error" `Quick test_cuda_fast32_intrinsic_error;
          Alcotest.test_case "flavor names" `Quick test_flavor_names_distinct;
        ] );
    ]
