(* Tests for lib/fp: IEEE-754 bit utilities, error-free transforms,
   software FMA, and the digit-difference metric. *)

open Helpers

let arbitrary_finite =
  QCheck.map
    (fun (m, e) -> ldexp m (e mod 600))
    QCheck.(pair (float_bound_exclusive 1.0) small_int)

(* ------------------------------------------------------------------ *)
(* Bits *)

let test_classify () =
  let open Fp.Bits in
  check_bool "real" true (classify 1.5 = Real);
  check_bool "subnormal is real" true (classify 1e-310 = Real);
  check_bool "zero" true (classify 0.0 = Zero);
  check_bool "neg zero" true (classify (-0.0) = Zero);
  check_bool "+inf" true (classify Float.infinity = Pos_inf);
  check_bool "-inf" true (classify Float.neg_infinity = Neg_inf);
  check_bool "nan" true (classify Float.nan = Nan)

let test_class_pair_name_normalized () =
  let open Fp.Bits in
  check_string "order-insensitive" (class_pair_name Real Nan)
    (class_pair_name Nan Real);
  check_string "rendering" "{Real, Zero}" (class_pair_name Zero Real)

let test_hex_roundtrip_known () =
  check_string "1.0" "3ff0000000000000" (Fp.Bits.hex_of_double 1.0);
  check_string "-2.0" "c000000000000000" (Fp.Bits.hex_of_double (-2.0));
  check_string "+0" "0000000000000000" (Fp.Bits.hex_of_double 0.0);
  check_bool "roundtrip" true
    (Fp.Bits.double_of_hex (Fp.Bits.hex_of_double 0.1) = 0.1)

let test_hex_reject () =
  Alcotest.check_raises "short"
    (Invalid_argument "Bits.double_of_hex: need 16 hex chars") (fun () ->
      ignore (Fp.Bits.double_of_hex "abc"))

let test_flush_subnormal () =
  check_bool "subnormal flushed" true (Fp.Bits.flush_subnormal 1e-310 = 0.0);
  check_bool "sign kept" true (Float.sign_bit (Fp.Bits.flush_subnormal (-1e-310)));
  check_bool "normal kept" true (Fp.Bits.flush_subnormal 1e-300 = 1e-300)

let test_ulp () =
  check_bool "ulp(1.0) = eps" true (Fp.Bits.ulp 1.0 = epsilon_float);
  check_bool "ulp positive" true (Fp.Bits.ulp 12345.678 > 0.0)

let test_nudge () =
  check_bool "+1 is succ" true (Fp.Bits.nudge_ulps 1.0 1 = Float.succ 1.0);
  check_bool "-1 is pred" true (Fp.Bits.nudge_ulps 1.0 (-1) = Float.pred 1.0);
  check_bool "0 identity" true (Fp.Bits.nudge_ulps 3.25 0 = 3.25);
  check_bool "inf unchanged" true
    (Fp.Bits.nudge_ulps Float.infinity 5 = Float.infinity)

let test_ulp_distance () =
  check_bool "equal" true (Fp.Bits.ulp_distance 1.0 1.0 = 0L);
  check_bool "adjacent" true (Fp.Bits.ulp_distance 1.0 (Float.succ 1.0) = 1L);
  check_bool "zero pair" true (Fp.Bits.ulp_distance 0.0 (-0.0) = 1L);
  check_bool "across zero" true
    (Fp.Bits.ulp_distance (Float.succ 0.0) (Float.pred 0.0) = 3L)

let test_nudge32 () =
  check_bool "one f32 step is visible after f32 rounding" true
    (let x = 1.5 in
     let y = Fp.Bits.nudge_ulps32 x 1 in
     y <> x && Int32.bits_of_float y <> Int32.bits_of_float x);
  check_bool "f32 step smaller than 2 f32 ulps" true
    (Float.abs (Fp.Bits.nudge_ulps32 1.0 1 -. 1.0) < 2.5e-7);
  check_bool "inverse" true
    (Fp.Bits.nudge_ulps32 (Fp.Bits.nudge_ulps32 0.25 5) (-5) = 0.25);
  check_bool "inf unchanged" true
    (Fp.Bits.nudge_ulps32 Float.infinity 3 = Float.infinity)

let qcheck_hex_roundtrip =
  QCheck.Test.make ~name:"hex encode/decode roundtrips bits" ~count:1000
    QCheck.int64 (fun bits ->
      let x = Int64.float_of_bits bits in
      Int64.bits_of_float (Fp.Bits.double_of_hex (Fp.Bits.hex_of_double x))
      = Int64.bits_of_float x)

let qcheck_nudge_inverse =
  QCheck.Test.make ~name:"nudge n then -n is identity (finite)" ~count:1000
    QCheck.(pair arbitrary_finite (int_bound 1000))
    (fun (x, n) ->
      QCheck.assume (Float.is_finite x);
      let y = Fp.Bits.nudge_ulps x n in
      QCheck.assume (Float.is_finite y);
      Fp.Bits.nudge_ulps y (-n) = x
      || Int64.bits_of_float (Fp.Bits.nudge_ulps y (-n)) = Int64.bits_of_float x)

let qcheck_nudge_distance =
  QCheck.Test.make ~name:"nudge by n is at ulp distance |n|" ~count:1000
    QCheck.(pair arbitrary_finite (int_range (-500) 500))
    (fun (x, n) ->
      QCheck.assume (Float.is_finite x);
      let y = Fp.Bits.nudge_ulps x n in
      QCheck.assume (Float.is_finite y);
      Fp.Bits.ulp_distance x y = Int64.of_int (abs n))

(* ------------------------------------------------------------------ *)
(* Eft *)

let dd_to_string (s, e) = Printf.sprintf "(%h, %h)" s e

let test_two_sum_exact () =
  let s, e = Fp.Eft.two_sum 1.0 1e-20 in
  check_bool "rounded part" true (s = 1.0);
  check_bool "error captured" true (e = 1e-20);
  ignore (dd_to_string (s, e))

let test_two_prod_exact () =
  let p, e = Fp.Eft.two_prod 0.1 0.1 in
  check_bool "p is rounded product" true (p = 0.1 *. 0.1);
  check_bool "error nonzero for inexact" true (e <> 0.0)

let qcheck_two_sum_invariant =
  QCheck.Test.make ~name:"two_sum: s is fl(a+b), error below half an ulp"
    ~count:1000
    QCheck.(pair (float_bound_exclusive 1e10) (float_bound_exclusive 1e10))
    (fun (a, b) ->
      let s, e = Fp.Eft.two_sum a b in
      s = a +. b && (e = 0.0 || Float.abs e <= 0.5 *. Fp.Bits.ulp s))

let qcheck_two_sum_reconstruct =
  QCheck.Test.make ~name:"two_sum error reconstructs exactly on ints"
    ~count:1000
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (ia, ib) ->
      (* integer inputs: a + b is exact, so e must be 0 *)
      let a = float_of_int ia and b = float_of_int ib in
      let s, e = Fp.Eft.two_sum a b in
      s = a +. b && e = 0.0)

let qcheck_two_prod_fma_check =
  QCheck.Test.make ~name:"two_prod error equals fma residual" ~count:1000
    QCheck.(pair (float_bound_exclusive 1e8) (float_bound_exclusive 1e8))
    (fun (a, b) ->
      let p, e = Fp.Eft.two_prod a b in
      (* fma(a, b, -p) computes a*b - p exactly rounded; for the EFT the
         residual is representable, so they must agree. *)
      p = a *. b && e = Float.fma a b (-.p))

let test_dd_sum_more_accurate () =
  (* summing 10_000 copies of 0.1 in double-double is far closer to 1000
     than naive summation *)
  let naive = ref 0.0 in
  let dd = ref (Fp.Eft.Dd.of_float 0.0) in
  for _ = 1 to 10_000 do
    naive := !naive +. 0.1;
    dd := Fp.Eft.Dd.add_float !dd 0.1
  done;
  let err_naive = Float.abs (!naive -. 1000.0) in
  let err_dd = Float.abs (Fp.Eft.Dd.to_float !dd -. 1000.0) in
  check_bool "double-double wins" true (err_dd < err_naive /. 100.0)

let test_dd_mul () =
  (* of_prod captures the exact product: lo must equal the fma residual *)
  let d = Fp.Eft.Dd.of_prod 0.1 0.1 in
  check_bool "hi is rounded product" true (d.Fp.Eft.Dd.hi = 0.1 *. 0.1);
  check_bool "lo is the exact residual" true
    (d.Fp.Eft.Dd.lo = Float.fma 0.1 0.1 (-.(0.1 *. 0.1)))

(* ------------------------------------------------------------------ *)
(* Fma *)

let test_fma_basic () =
  check_bool "exact case" true (Fp.Fma.software 2.0 3.0 4.0 = 10.0);
  check_bool "matches hardware on simple" true
    (Fp.Fma.software 0.1 0.1 (-0.01) = Fp.Fma.hardware 0.1 0.1 (-0.01))

let test_fma_single_rounding_differs () =
  (* The canonical case where fused and unfused differ: squaring 1+2^-27
     and subtracting 1 — the cross term survives only under fusion. *)
  let a = 1.0 +. 0x1p-27 in
  let fused = Fp.Fma.hardware a a (-1.0) in
  let unfused = (a *. a) -. 1.0 in
  check_bool "fma differs from mul+add here" true (fused <> unfused);
  check_bool "fused keeps the low term" true (fused = 0x1p-26 +. 0x1p-54)

let qcheck_fma_matches_hardware =
  QCheck.Test.make ~name:"software fma == hardware fma (normal range)"
    ~count:2000
    QCheck.(triple (float_bound_exclusive 1e15) (float_bound_exclusive 1e15)
              (float_bound_exclusive 1e15))
    (fun (a, b, c) ->
      let sw = Fp.Fma.software a b c and hw = Fp.Fma.hardware a b c in
      Int64.bits_of_float sw = Int64.bits_of_float hw)

let qcheck_fma_signs =
  QCheck.Test.make ~name:"software fma sign combinations match hardware"
    ~count:2000
    QCheck.(quad (float_bound_exclusive 1e6) (float_bound_exclusive 1e6)
              (float_bound_exclusive 1e6) (pair bool bool))
    (fun (a, b, c, (sa, sb)) ->
      let a = if sa then -.a else a in
      let b = if sb then -.b else b in
      Int64.bits_of_float (Fp.Fma.software a b c)
      = Int64.bits_of_float (Fp.Fma.hardware a b c))

let test_fma_specials () =
  check_bool "nan propagates" true (Float.is_nan (Fp.Fma.software Float.nan 1.0 1.0));
  check_bool "inf" true (Fp.Fma.software Float.infinity 1.0 0.0 = Float.infinity)

(* ------------------------------------------------------------------ *)
(* Digits *)

let test_decompose () =
  let neg, digits, exp10 = Fp.Digits.decompose 0.1 in
  check_bool "positive" false neg;
  check_string "mantissa" "1000000000000000" digits;
  check_int "exponent" (-1) exp10

let test_decompose_zero () =
  let _, digits, exp10 = Fp.Digits.decompose 0.0 in
  check_string "all zero" "0000000000000000" digits;
  check_int "zero exponent" 0 exp10

let test_diff_count_cases () =
  check_int "identical" 0 (Fp.Digits.diff_count 1.5 1.5);
  check_int "sign flip" 16 (Fp.Digits.diff_count 1.5 (-1.5));
  check_int "exponent diff" 16 (Fp.Digits.diff_count 1.5 15.0);
  check_int "non-finite" 16 (Fp.Digits.diff_count 1.5 Float.nan);
  check_bool "last-ulp is small" true
    (Fp.Digits.diff_count 1.0 (Float.succ 1.0) <= 2);
  check_bool "one ulp at least 1" true
    (Fp.Digits.diff_count 1.0 (Float.succ 1.0) >= 1)

let test_diff_count_cascade () =
  (* 0.2999999999999999 vs 0.3: the decimal carry ripples across every
     printed digit even though the values are a few ulps apart *)
  check_bool "cascading carry" true
    (Fp.Digits.diff_count (0.3 -. 1e-16) 0.3 > 10)

let qcheck_diff_count_bounds =
  QCheck.Test.make ~name:"diff_count in [0,16]" ~count:1000
    QCheck.(pair arbitrary_finite arbitrary_finite)
    (fun (a, b) ->
      let d = Fp.Digits.diff_count a b in
      d >= 0 && d <= 16)

let qcheck_diff_count_symmetric =
  QCheck.Test.make ~name:"diff_count symmetric" ~count:1000
    QCheck.(pair arbitrary_finite arbitrary_finite)
    (fun (a, b) -> Fp.Digits.diff_count a b = Fp.Digits.diff_count b a)

let test_acc () =
  let acc = Fp.Digits.Acc.empty in
  check_string "empty renders dash" "-" (Fp.Digits.Acc.to_string acc);
  let acc = Fp.Digits.Acc.add (Fp.Digits.Acc.add (Fp.Digits.Acc.add acc 1) 16) 4 in
  check_int "count" 3 (Fp.Digits.Acc.count acc);
  check_int "min" 1 (Fp.Digits.Acc.min acc);
  check_int "max" 16 (Fp.Digits.Acc.max acc);
  check_string "render" "(1/16/7.00)" (Fp.Digits.Acc.to_string acc)

let () =
  Alcotest.run "fp"
    [
      ( "bits",
        [
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "class pair names" `Quick test_class_pair_name_normalized;
          Alcotest.test_case "hex known values" `Quick test_hex_roundtrip_known;
          Alcotest.test_case "hex rejects malformed" `Quick test_hex_reject;
          Alcotest.test_case "flush subnormal" `Quick test_flush_subnormal;
          Alcotest.test_case "ulp" `Quick test_ulp;
          Alcotest.test_case "nudge" `Quick test_nudge;
          Alcotest.test_case "ulp distance" `Quick test_ulp_distance;
          Alcotest.test_case "nudge on f32 grid" `Quick test_nudge32;
          QCheck_alcotest.to_alcotest qcheck_hex_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_nudge_inverse;
          QCheck_alcotest.to_alcotest qcheck_nudge_distance;
        ] );
      ( "eft",
        [
          Alcotest.test_case "two_sum exact" `Quick test_two_sum_exact;
          Alcotest.test_case "two_prod exact" `Quick test_two_prod_exact;
          QCheck_alcotest.to_alcotest qcheck_two_sum_invariant;
          QCheck_alcotest.to_alcotest qcheck_two_sum_reconstruct;
          QCheck_alcotest.to_alcotest qcheck_two_prod_fma_check;
          Alcotest.test_case "dd summation accuracy" `Quick test_dd_sum_more_accurate;
          Alcotest.test_case "dd multiplication" `Quick test_dd_mul;
        ] );
      ( "fma",
        [
          Alcotest.test_case "basic" `Quick test_fma_basic;
          Alcotest.test_case "single rounding differs" `Quick
            test_fma_single_rounding_differs;
          QCheck_alcotest.to_alcotest qcheck_fma_matches_hardware;
          QCheck_alcotest.to_alcotest qcheck_fma_signs;
          Alcotest.test_case "special values" `Quick test_fma_specials;
        ] );
      ( "digits",
        [
          Alcotest.test_case "decompose" `Quick test_decompose;
          Alcotest.test_case "decompose zero" `Quick test_decompose_zero;
          Alcotest.test_case "diff count cases" `Quick test_diff_count_cases;
          Alcotest.test_case "cascading carry" `Quick test_diff_count_cascade;
          QCheck_alcotest.to_alcotest qcheck_diff_count_bounds;
          QCheck_alcotest.to_alcotest qcheck_diff_count_symmetric;
          Alcotest.test_case "accumulator" `Quick test_acc;
        ] );
    ]
