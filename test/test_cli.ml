(* CLI-level tests: drive the real llm4fp binary.

   The tests run from _build/default/test/ with ../bin/llm4fp.exe
   declared as a dep, so the binary is always fresh. Three areas:

   - the archive-less diagnostics: dashboard/explain on a missing or
     empty case archive exit 2 with a one-line hint, distinct from
     exit 1 ("archive exists but something else failed");
   - the golden flight-deck frame: a fixed-seed campaign's trace
     replays ([watch --replay]) to byte-identical output, pinned by
     test/golden/watch_frame.txt;
   - the trace query and flamegraph export round-trips. *)

open Helpers

let exe = Filename.concat ".." (Filename.concat "bin" "llm4fp.exe")

(* Run the binary, capturing stdout/stderr to files; returns
   (exit_code, stdout, stderr). *)
let run args =
  with_tmpdir ~prefix:"llm4fp-cli-io" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let out = Filename.concat dir "out" and err = Filename.concat dir "err" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s > %s 2> %s" (Filename.quote exe) args
         (Filename.quote out) (Filename.quote err))
  in
  (code, read_file out, read_file err)

let contains = Util.Text.contains_sub

let test_dashboard_missing_archive () =
  with_tmpdir @@ fun dir ->
  let code, _, err = run (Printf.sprintf "dashboard %s" (Filename.quote dir)) in
  check_int "exit 2" 2 code;
  check_bool "one-line diagnostic" true (contains err "no case archive")

let test_dashboard_empty_archive () =
  with_tmpdir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let code, _, err = run (Printf.sprintf "dashboard %s" (Filename.quote dir)) in
  check_int "exit 2" 2 code;
  check_bool "names the empty archive" true (contains err "empty")

let test_explain_missing_archive () =
  with_tmpdir @@ fun dir ->
  let code, _, err =
    run (Printf.sprintf "explain --archive %s 0123456789abcdef"
           (Filename.quote dir))
  in
  check_int "exit 2" 2 code;
  check_bool "one-line diagnostic" true (contains err "no case archive")

let test_explain_empty_archive () =
  with_tmpdir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let code, _, err =
    run (Printf.sprintf "explain --archive %s 0123456789abcdef"
           (Filename.quote dir))
  in
  check_int "exit 2" 2 code;
  check_bool "names the empty archive" true (contains err "empty")

(* One fixed-seed trace shared by the replay/query/export tests. *)
let with_campaign_trace f =
  with_tmpdir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let trace = Filename.concat dir "trace.jsonl" in
  let code, _, err =
    run (Printf.sprintf "campaign llm4fp -b 12 -s 42 --trace %s"
           (Filename.quote trace))
  in
  if code <> 0 then Alcotest.fail ("campaign failed: " ^ err);
  f trace

let test_watch_replay_golden_frame () =
  with_campaign_trace @@ fun trace ->
  let code, frame, err =
    run (Printf.sprintf "watch --replay %s" (Filename.quote trace))
  in
  if code <> 0 then Alcotest.fail ("watch --replay failed: " ^ err);
  check_golden "flight-deck frame" ~golden:"golden/watch_frame.txt" frame;
  (* and replaying is idempotent byte for byte *)
  let _, again, _ =
    run (Printf.sprintf "watch --replay %s" (Filename.quote trace))
  in
  check_string "byte-identical on re-replay" frame again

let test_watch_live_finished_trace () =
  (* A live watch attached to an already-finished trace drains it in
     one poll and exits 0 on the campaign_finished event. *)
  with_campaign_trace @@ fun trace ->
  let code, out, err =
    run (Printf.sprintf "watch --interval 0.05 %s" (Filename.quote trace))
  in
  if code <> 0 then Alcotest.fail ("live watch failed: " ^ err);
  check_bool "renders the deck" true (contains out "flight deck");
  (* non-TTY output: no clear-screen escapes *)
  check_bool "no ANSI clears when piped" false (contains out "\027[")

let test_watch_timeout () =
  with_tmpdir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let code, _, err =
    run
      (Printf.sprintf "watch --interval 0.05 --timeout 0.2 %s"
         (Filename.quote (Filename.concat dir "never.jsonl")))
  in
  check_int "exit 3 on timeout" 3 code;
  check_bool "says not finished" true (contains err "not finished")

let test_trace_query () =
  with_campaign_trace @@ fun trace ->
  let code, out, _ =
    run (Printf.sprintf "trace %s --stats" (Filename.quote trace)) in
  check_int "stats exits 0" 0 code;
  check_bool "counts campaign_finished" true (contains out "campaign_finished");
  let code, out, _ =
    run (Printf.sprintf "trace %s --kind slot_finished" (Filename.quote trace))
  in
  check_int "filter exits 0" 0 code;
  let lines = String.split_on_char '\n' (String.trim out) in
  (* header + separator + one row per slot *)
  check_int "one row per slot" 14 (List.length lines);
  check_bool "rows carry the sim clock" true (contains out "sim=");
  let code, csv, _ =
    run
      (Printf.sprintf "trace %s --kind inconsistency_found --slot 1 --csv"
         (Filename.quote trace))
  in
  check_int "csv exits 0" 0 code;
  check_bool "csv header" true (contains csv "#,slot,event,detail");
  (* determinism: the same query twice is byte-identical *)
  let _, csv2, _ =
    run
      (Printf.sprintf "trace %s --kind inconsistency_found --slot 1 --csv"
         (Filename.quote trace))
  in
  check_string "csv deterministic" csv csv2

let test_coverage_query () =
  with_campaign_trace @@ fun trace ->
  let code, out, _ =
    run (Printf.sprintf "coverage %s" (Filename.quote trace)) in
  check_int "coverage exits 0" 0 code;
  check_bool "table header names the cell axes" true
    (contains out "kind" && contains out "classes");
  check_bool "lists a cross cell" true (contains out "cross");
  check_bool "lists first-discovery provenance" true
    (contains out "first slot");
  (* deterministic: the same query twice is byte-identical *)
  let _, again, _ =
    run (Printf.sprintf "coverage %s" (Filename.quote trace)) in
  check_string "table deterministic" out again;
  let code, csv, _ =
    run (Printf.sprintf "coverage %s --csv" (Filename.quote trace)) in
  check_int "csv exits 0" 0 code;
  check_bool "csv header" true
    (contains csv "kind,pair,level,classes,hits,first slot,first sim_s,strategy");
  check_int "one csv row per table row"
    (List.length (String.split_on_char '\n' (String.trim out)) - 1)
    (List.length (String.split_on_char '\n' (String.trim csv)));
  let code, by, _ =
    run (Printf.sprintf "coverage %s --by-strategy" (Filename.quote trace)) in
  check_int "by-strategy exits 0" 0 code;
  check_bool "per-strategy rates" true
    (contains by "novel/sim-s" && contains by "/s");
  (* a missing trace dies in cmdliner's file converter *)
  let code, _, _ =
    run (Printf.sprintf "coverage %s"
           (Filename.quote (trace ^ ".does-not-exist"))) in
  check_int "missing trace exits 124" 124 code;
  (* a corrupt trace dies in the follower, with provenance *)
  let corrupt = trace ^ ".corrupt" in
  let oc = open_out_bin corrupt in
  output_string oc "this is not an event\n";
  close_out oc;
  let code, _, err = run (Printf.sprintf "coverage %s" (Filename.quote corrupt)) in
  check_int "corrupt trace exits 1" 1 code;
  check_bool "error names the command" true (contains err "llm4fp coverage");
  check_bool "error names the line" true (contains err "line 1")

let test_profile_flame_export () =
  with_tmpdir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let out_json = Filename.concat dir "flame.json" in
  let code, out, err =
    run (Printf.sprintf "profile -b 6 -s 7 --flame %s"
           (Filename.quote out_json))
  in
  if code <> 0 then Alcotest.fail ("profile failed: " ^ err);
  check_bool "prints the span tree" true (contains out "span tree");
  match Obs.Json.parse (String.trim (read_file out_json)) with
  | Error msg -> Alcotest.fail ("flame file unparseable: " ^ msg)
  | Ok json -> begin
    match Obs.Json.member "traceEvents" json with
    | Some (Obs.Json.List (_ :: _ as events)) ->
      List.iter
        (fun ev ->
          check_bool "complete slices only" true
            (Obs.Json.member "ph" ev = Some (Obs.Json.String "X")))
        events
    | _ -> Alcotest.fail "flame file has no traceEvents"
  end

(* ------------------------------------------------------------------ *)
(* Fleet: sharded campaigns, supervision, merge *)

(* Malformed --shard specs are usage errors: exit 2 with a one-line
   diagnostic, before any work happens. *)
let test_shard_diagnostics () =
  List.iter
    (fun spec ->
      let code, _, err =
        run (Printf.sprintf "campaign llm4fp -b 4 --shard %s --out /tmp/x" spec)
      in
      check_int (Printf.sprintf "--shard %s exits 2" spec) 2 code;
      check_bool
        (Printf.sprintf "--shard %s diagnostic names the shape" spec)
        true
        (contains err "I/N" || contains err "malformed shard"))
    [ "3/2"; "abc"; "1/0"; "1/-2"; "2/2" ];
  let code, _, err = run "campaign llm4fp -b 4 --shard 0/2" in
  check_int "--shard without --out exits 2" 2 code;
  check_bool "asks for --out" true (contains err "--out");
  let code, _, err = run "campaign llm4fp -b 4 --out /tmp/x" in
  check_int "--out without --shard exits 2" 2 code;
  check_bool "says --shard" true (contains err "--shard");
  let code, _, err =
    run "campaign llm4fp -b 4 --shard 0/2 --out /tmp/x --trace /tmp/t.jsonl"
  in
  check_int "--shard rejects --trace" 2 code;
  check_bool "explains the conflict" true (contains err "--shard");
  let code, _, _ = run "fleet llm4fp -n 0 --out /tmp/x" in
  check_int "fleet -n 0 exits 2" 2 code

(* Everything the byte-identity drills compare on, per chunk. The
   checkpoint files embed absolute archive paths (they differ across
   roots by construction), so the comparison is outcome + trace +
   archive — the data the merge consumes. *)
let chunk_observation root =
  Sys.readdir root |> Array.to_list
  |> List.filter (fun n -> String.starts_with ~prefix:"chunk-" n)
  |> List.sort String.compare
  |> List.map (fun n ->
         let dir = Filename.concat root n in
         ( n,
           read_file (Filename.concat dir "outcome.json"),
           read_file (Filename.concat dir "trace.jsonl"),
           archive_bytes (Filename.concat dir "cases") ))

let run_fleet ?(extra = "") ~root () =
  run
    (Printf.sprintf
       "fleet llm4fp -n 2 -b 12 --chunk 5 --checkpoint-every 2 --out %s%s"
       (Filename.quote root) extra)

(* The supervision drill: a fleet whose children all crash at their
   second checkpoint write must restart each shard, resume it from its
   durable per-chunk state, and still converge to the byte-identical
   tree and merge of an unfaulted fleet. *)
let test_fleet_crash_and_resume () =
  with_tmpdir ~prefix:"llm4fp-fleet-clean" @@ fun clean ->
  with_tmpdir ~prefix:"llm4fp-fleet-faulted" @@ fun faulted ->
  let code, out, err = run_fleet ~root:clean () in
  if code <> 0 then Alcotest.fail ("clean fleet failed: " ^ err);
  check_bool "clean fleet reports no restarts" true
    (contains out "0 restart(s)");
  check_bool "clean fleet suggests the merge" true (contains out "llm4fp merge");
  let code, out, err =
    run_fleet ~root:faulted ~extra:" --faults checkpoint@2:crash" ()
  in
  if code <> 0 then Alcotest.fail ("faulted fleet failed: " ^ err);
  check_bool "supervisor reports the restarts" true
    (contains err "crashed; restarting");
  check_bool "restarts surface in the frame" true (contains out "restart(s)");
  check_bool "faulted fleet restarted at least one shard" false
    (contains out "0 restart(s)");
  check_bool "crash-and-resume tree byte-identical to clean fleet" true
    (chunk_observation faulted = chunk_observation clean);
  (* and the merges agree byte for byte, artifacts included *)
  let merge root sub =
    let dir = Filename.concat root sub in
    let code, _, err =
      run (Printf.sprintf "merge %s --out %s" (Filename.quote root)
             (Filename.quote dir))
    in
    if code <> 0 then Alcotest.fail ("merge failed: " ^ err);
    ( read_file (Filename.concat dir "merged.json"),
      read_file (Filename.concat dir "stats.json"),
      read_file (Filename.concat dir "coverage.json"),
      archive_bytes (Filename.concat dir "cases") )
  in
  check_bool "merged artifacts byte-identical" true
    (merge faulted "merged" = merge clean "merged")

(* Merging an empty root is a usage error, like the other archive-less
   diagnostics. *)
let test_merge_empty_root () =
  with_tmpdir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let code, _, err = run (Printf.sprintf "merge %s" (Filename.quote dir)) in
  check_int "exit 2" 2 code;
  check_bool "hints at fleet/--shard" true
    (contains err "llm4fp fleet" || contains err "--shard")

(* The merged dashboard is deterministic: a fixed-seed single-process
   shard run merges to the golden HTML, byte for byte. *)
let test_merge_golden_dashboard () =
  with_tmpdir ~prefix:"llm4fp-merge-golden" @@ fun root ->
  let code, _, err =
    run
      (Printf.sprintf "campaign llm4fp -b 12 --chunk 5 --shard 0/1 --out %s"
         (Filename.quote root))
  in
  if code <> 0 then Alcotest.fail ("shard run failed: " ^ err);
  let html = Filename.concat root "dashboard.html" in
  let code, out, err =
    run
      (Printf.sprintf "merge %s --html %s --title %s" (Filename.quote root)
         (Filename.quote html)
         (Filename.quote "LLM4FP merged dashboard (golden)"))
  in
  if code <> 0 then Alcotest.fail ("merge --html failed: " ^ err);
  check_bool "summary names the merge" true (contains out "merged 3 chunk(s)");
  check_golden "merged dashboard" ~golden:"golden/merged_dashboard.html"
    (read_file html)

let () =
  Alcotest.run "cli"
    [
      ( "diagnostics",
        [
          Alcotest.test_case "dashboard: missing archive" `Quick
            test_dashboard_missing_archive;
          Alcotest.test_case "dashboard: empty archive" `Quick
            test_dashboard_empty_archive;
          Alcotest.test_case "explain: missing archive" `Quick
            test_explain_missing_archive;
          Alcotest.test_case "explain: empty archive" `Quick
            test_explain_empty_archive;
        ] );
      ( "watch",
        [
          Alcotest.test_case "replay matches golden frame" `Slow
            test_watch_replay_golden_frame;
          Alcotest.test_case "live watch of a finished trace" `Slow
            test_watch_live_finished_trace;
          Alcotest.test_case "timeout" `Quick test_watch_timeout;
        ] );
      ( "trace",
        [ Alcotest.test_case "query and csv" `Slow test_trace_query ] );
      ( "coverage",
        [ Alcotest.test_case "query, csv, rates" `Slow test_coverage_query ] );
      ( "profile",
        [
          Alcotest.test_case "flame export" `Slow test_profile_flame_export;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "shard diagnostics" `Quick test_shard_diagnostics;
          Alcotest.test_case "crash and resume" `Slow
            test_fleet_crash_and_resume;
          Alcotest.test_case "merge: empty root" `Quick test_merge_empty_root;
          Alcotest.test_case "merge: golden dashboard" `Slow
            test_merge_golden_dashboard;
        ] );
    ]
