(* Tests for lib/harness: campaigns, time model, experiment rendering. *)

open Helpers

let small_budget = 25

let campaign approach = Harness.Campaign.run ~budget:small_budget ~seed:4242 approach

let test_campaign_accounting () =
  Array.iter
    (fun approach ->
      let o = campaign approach in
      check_int "budget consumed" small_budget
        (Difftest.Stats.n_programs o.Harness.Campaign.stats);
      check_int "programs + failures = budget" small_budget
        (List.length o.Harness.Campaign.programs
        + o.Harness.Campaign.generation_failures);
      check_bool "clock advanced" true (o.Harness.Campaign.sim_seconds > 0.0))
    Harness.Approach.all

let test_campaign_deterministic () =
  let a = campaign Harness.Approach.Llm4fp in
  let b = campaign Harness.Approach.Llm4fp in
  check_int "same inconsistencies"
    (Difftest.Stats.total_inconsistencies a.Harness.Campaign.stats)
    (Difftest.Stats.total_inconsistencies b.Harness.Campaign.stats);
  check_bool "same programs" true
    (List.for_all2 Lang.Ast.equal a.Harness.Campaign.programs
       b.Harness.Campaign.programs);
  check_bool "same simulated time" true
    (a.Harness.Campaign.sim_seconds = b.Harness.Campaign.sim_seconds)

let test_campaign_seed_sensitivity () =
  let a = Harness.Campaign.run ~budget:small_budget ~seed:1 Harness.Approach.Varity in
  let b = Harness.Campaign.run ~budget:small_budget ~seed:2 Harness.Approach.Varity in
  check_bool "different seeds differ" false
    (List.for_all2 Lang.Ast.equal a.Harness.Campaign.programs
       b.Harness.Campaign.programs)

let test_varity_no_llm () =
  let o = campaign Harness.Approach.Varity in
  check_bool "no llm latency" true (o.Harness.Campaign.llm_seconds = 0.0);
  check_int "no generation failures" 0 o.Harness.Campaign.generation_failures

let test_llm_has_latency () =
  let o = campaign Harness.Approach.Grammar_guided in
  check_bool "latency charged" true (o.Harness.Campaign.llm_seconds > 0.0);
  check_bool "llm time within total" true
    (o.Harness.Campaign.llm_seconds <= o.Harness.Campaign.sim_seconds)

let test_feedback_set_only_llm4fp () =
  check_int "grammar-guided has no feedback" 0
    (campaign Harness.Approach.Grammar_guided).Harness.Campaign.successful

let test_approach_names () =
  check_bool "paper spellings" true
    (Array.to_list (Array.map Harness.Approach.name Harness.Approach.all)
    = [ "VARITY"; "DIRECT-PROMPT"; "GRAMMAR-GUIDED"; "LLM4FP" ]);
  check_bool "of_name roundtrip" true
    (Array.for_all
       (fun a -> Harness.Approach.of_name (Harness.Approach.name a) = Some a)
       Harness.Approach.all);
  check_bool "case insensitive" true
    (Harness.Approach.of_name "llm4fp" = Some Harness.Approach.Llm4fp)

let test_time_model_monotonic () =
  let clock = Util.Sim_clock.create () in
  Harness.Time_model.charge_program clock ~work:100 ~ops:1000 ~configs:18;
  let small = Util.Sim_clock.elapsed clock in
  Util.Sim_clock.reset clock;
  Harness.Time_model.charge_program clock ~work:1000 ~ops:10000 ~configs:18;
  check_bool "bigger program costs more" true (Util.Sim_clock.elapsed clock > small)

(* ------------------------------------------------------------------ *)
(* Experiments *)

let suite = lazy (Harness.Experiments.run_suite ~budget:30 ~seed:90125 ())

let test_tables_render () =
  let tables = Harness.Experiments.all_tables ~max_pairs:500 (Lazy.force suite) in
  check_int "ten sections" 10 (List.length tables);
  List.iter
    (fun (name, text) ->
      check_bool (name ^ " non-empty") true (String.length text > 40))
    tables

let test_table1_is_configuration () =
  let t = Harness.Experiments.table1 () in
  List.iter
    (fun needle -> check_bool needle true (Util.Text.contains_sub t needle))
    [ "00_nofma"; "-ffp-contract=off"; "-fmad=false"; "-use_fast_math";
      "-ffast-math" ]

let test_table2_mentions_all_approaches () =
  let t = Harness.Experiments.table2 (Lazy.force suite) in
  List.iter
    (fun needle -> check_bool needle true (Util.Text.contains_sub t needle))
    [ "VARITY"; "DIRECT-PROMPT"; "GRAMMAR-GUIDED"; "LLM4FP"; "%" ]

let test_table5_has_pairs () =
  let t = Harness.Experiments.table5 (Lazy.force suite) in
  List.iter
    (fun needle -> check_bool needle true (Util.Text.contains_sub t needle))
    [ "gcc, clang"; "gcc, nvcc"; "clang, nvcc"; "03_fastmath"; "Total" ]

let test_table6_within_compilers () =
  let t = Harness.Experiments.table6 (Lazy.force suite) in
  check_bool "no baseline row" false (Util.Text.contains_sub t "00_nofma  ");
  List.iter
    (fun needle -> check_bool needle true (Util.Text.contains_sub t needle))
    [ "V: gcc"; "L: nvcc"; "Total" ]

let test_parallel_suite_byte_identical () =
  (* The whole point of the parallel engine: job count must never change
     results. Render the deterministic tables from a sequential and a
     4-job suite and require byte equality. (summary embeds measured
     real seconds, so it is exactly the section this check must avoid.) *)
  let render jobs =
    let s = Harness.Experiments.run_suite ~budget:15 ~jobs ~seed:424242 () in
    (Harness.Experiments.table2 s, Harness.Experiments.table5 s)
  in
  let t2_seq, t5_seq = render 1 in
  let t2_par, t5_par = render 4 in
  Alcotest.(check string) "table2 identical at jobs=1 and jobs=4" t2_seq t2_par;
  Alcotest.(check string) "table5 identical at jobs=1 and jobs=4" t5_seq t5_par

let test_parallel_campaign_same_outcome () =
  let run jobs =
    Harness.Campaign.run ~budget:12 ~jobs ~seed:7 Harness.Approach.Llm4fp
  in
  let seq = run 1 and par = run 4 in
  check_int "same inconsistencies"
    (Difftest.Stats.total_inconsistencies seq.Harness.Campaign.stats)
    (Difftest.Stats.total_inconsistencies par.Harness.Campaign.stats);
  check_int "same comparisons"
    (Difftest.Stats.total_comparisons seq.Harness.Campaign.stats)
    (Difftest.Stats.total_comparisons par.Harness.Campaign.stats);
  check_int "same feedback set" seq.Harness.Campaign.successful
    par.Harness.Campaign.successful;
  check_bool "same programs" true
    (seq.Harness.Campaign.programs = par.Harness.Campaign.programs);
  Alcotest.(check (float 1e-9)) "same simulated clock"
    seq.Harness.Campaign.sim_seconds par.Harness.Campaign.sim_seconds;
  (* the coverage ledger — hits, provenance, rolling window — is part
     of the determinism contract too *)
  Alcotest.(check string) "same coverage ledger at jobs=1 and jobs=4"
    (Obs.Json.to_string (Obs.Coverage.to_json seq.Harness.Campaign.coverage))
    (Obs.Json.to_string (Obs.Coverage.to_json par.Harness.Campaign.coverage))

let test_outcome_accessor () =
  let s = Lazy.force suite in
  Array.iter
    (fun a ->
      check_bool "accessor matches" true
        ((Harness.Experiments.outcome s a).Harness.Campaign.approach = a))
    Harness.Approach.all

let test_fp32_campaign () =
  let o =
    Harness.Campaign.run ~budget:15 ~precision:Lang.Ast.F32 ~seed:55
      Harness.Approach.Llm4fp
  in
  check_bool "programs are single precision" true
    (List.for_all
       (fun (p : Lang.Ast.program) -> p.Lang.Ast.precision = Lang.Ast.F32)
       o.Harness.Campaign.programs);
  check_int "budget consumed" 15 (Difftest.Stats.n_programs o.Harness.Campaign.stats)

let test_fp32_varity_campaign () =
  let o =
    Harness.Campaign.run ~budget:15 ~precision:Lang.Ast.F32 ~seed:56
      Harness.Approach.Varity
  in
  check_bool "varity programs are single precision" true
    (List.for_all
       (fun (p : Lang.Ast.program) -> p.Lang.Ast.precision = Lang.Ast.F32)
       o.Harness.Campaign.programs)

(* ------------------------------------------------------------------ *)
(* Execution engine equivalence: the tentpole acceptance drill. A
   fixed-seed campaign must be indistinguishable — outcome signature,
   ordered trace bytes, recorded case archives — across the tree
   interpreter and the register VM, sequential and parallel. *)

let test_engine_equivalence () =
  let observe engine jobs =
    with_tmpdir ~prefix:"llm4fp-engine" @@ fun root ->
    let saved = Compiler.Driver.engine () in
    Compiler.Driver.set_engine engine;
    let outcome, trace, arch =
      Fun.protect
        ~finally:(fun () -> Compiler.Driver.set_engine saved)
        (fun () -> run_traced_campaign ~budget:20 ~jobs ~seed:31337 ~root ())
    in
    (Harness.Campaign.signature outcome, read_file trace, archive_bytes arch)
  in
  let ref_sig, ref_trace, ref_archive = observe Compiler.Driver.Tree 1 in
  check_bool "reference trace non-empty" true (String.length ref_trace > 0);
  List.iter
    (fun (engine, jobs, label) ->
      let s, t, a = observe engine jobs in
      check_bool (label ^ ": outcome signature identical") true (s = ref_sig);
      check_bool (label ^ ": trace bytes identical") true (t = ref_trace);
      check_bool (label ^ ": case archive identical") true (a = ref_archive))
    [ (Compiler.Driver.Tree, 4, "tree/jobs=4");
      (Compiler.Driver.Vm, 1, "vm/jobs=1");
      (Compiler.Driver.Vm, 4, "vm/jobs=4") ]

(* ------------------------------------------------------------------ *)
(* Ablation *)

let test_ablation_variants_shape () =
  let variants = Harness.Ablation.variants () in
  check_int "five variants" 5 (List.length variants);
  check_bool "full first" true ((List.hd variants).Harness.Ablation.name = "full");
  List.iter
    (fun (v : Harness.Ablation.variant) ->
      check_int "18 configs each" 18 (List.length v.Harness.Ablation.configs))
    variants

let test_ablation_replay_reduces () =
  let outcome = Harness.Campaign.run ~budget:40 ~seed:777 Harness.Approach.Llm4fp in
  let cases = outcome.Harness.Campaign.cases in
  let replay name =
    let v =
      List.find
        (fun (v : Harness.Ablation.variant) -> v.Harness.Ablation.name = name)
        (Harness.Ablation.variants ())
    in
    Harness.Ablation.replay v cases
  in
  let rate name = Difftest.Stats.inconsistency_rate (replay name) in
  let full_stats = replay "full" in
  let full = Difftest.Stats.inconsistency_rate full_stats in
  (* Failed-generation slots count in the campaign's rate denominator
     but produce no case, so compare on the inconsistency count: the
     replayed corpus must reproduce every campaign finding. *)
  check_int "full replay reproduces the campaign's inconsistencies"
    (Difftest.Stats.total_inconsistencies outcome.Harness.Campaign.stats)
    (Difftest.Stats.total_inconsistencies full_stats);
  check_bool "removing the cuda libm lowers the rate" true
    (rate "no-cuda-libm" < full);
  check_bool "removing fast math cannot raise the rate much" true
    (rate "no-fastmath" <= full +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Bandit ensemble: arm accounting and the byte-identity drills. *)

let bandit_posterior (o : Harness.Campaign.outcome) =
  match o.Harness.Campaign.bandit with
  | None -> "none"
  | Some b -> Obs.Json.to_string (Harness.Bandit.to_json b)

let test_bandit_campaign_accounting () =
  let o = Harness.Campaign.run ~budget:30 ~seed:4242 Harness.Approach.Bandit in
  check_int "budget consumed" 30
    (Difftest.Stats.n_programs o.Harness.Campaign.stats);
  match o.Harness.Campaign.bandit with
  | None -> Alcotest.fail "bandit campaign returned no bandit state"
  | Some b ->
    let table = Harness.Bandit.table b in
    check_int "five arms in the table" 5 (List.length table);
    let pulls = List.fold_left (fun acc (_, p, _, _, _) -> acc + p) 0 table in
    check_int "arm pulls sum to the budget" 30 pulls;
    (* a fixed-arm campaign carries no bandit state *)
    check_bool "fixed arms have no bandit" true
      ((campaign Harness.Approach.Llm4fp).Harness.Campaign.bandit = None)

let test_bandit_byte_identical_across_jobs () =
  (* the arm stream is allocated per slot on the coordinator, so job
     count must not move a single draw: signature, posterior, coverage,
     trace bytes and archive bytes all byte-identical at jobs 1 and 4 *)
  let observe jobs =
    with_tmpdir ~prefix:"llm4fp-bandit-jobs" @@ fun root ->
    let outcome, trace, arch =
      run_traced_campaign ~budget:20 ~jobs ~seed:31337
        ~approach:Harness.Approach.Bandit ~root ()
    in
    ( Harness.Campaign.signature outcome,
      bandit_posterior outcome,
      Obs.Json.to_string
        (Obs.Coverage.to_json outcome.Harness.Campaign.coverage),
      read_file trace,
      archive_bytes arch )
  in
  let reference = observe 1 in
  let _, post, _, trace, _ = reference in
  check_bool "posterior recorded" true (post <> "none");
  check_bool "trace non-empty" true (String.length trace > 0);
  check_bool "jobs=4 byte-identical to jobs=1" true (observe 4 = reference)

(* ------------------------------------------------------------------ *)
(* Fleet shard invariance: the distributed-campaign acceptance drill.

   For every shard count N the fleet must produce the byte-identical
   chunk tree — outcome signature, per-chunk ordered trace bytes,
   per-chunk archive bytes, merged coverage ledger — because chunks,
   not shards, are the unit of determinism. N=1 is the single-process
   reference. *)

let fleet_budget = 12
let fleet_chunk = 5
let fleet_seed = 20250704

(* Run an N-shard fleet sequentially in-process (the trace sink is
   process-global, so shards take turns) and observe everything the
   drill compares on. *)
let observe_fleet ?(approach = Harness.Approach.Llm4fp) ~root n =
  Util.Durable.mkdir_p root;
  for i = 0 to n - 1 do
    match
      Harness.Fleet.run_shard ~chunk:fleet_chunk ~root
        ~spec:{ Harness.Shard.index = i; count = n }
        ~budget:fleet_budget ~seed:fleet_seed approach
    with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg
  done;
  match Harness.Fleet.load ~root with
  | Error msg -> Alcotest.fail msg
  | Ok m ->
    let n_chunks = List.length m.Harness.Fleet.chunks in
    let per_chunk f =
      List.init n_chunks (fun k -> f (Harness.Fleet.chunk_dir ~root k))
    in
    ( Harness.Fleet.signature m,
      per_chunk (fun dir -> read_file (Harness.Fleet.trace_path dir)),
      per_chunk (fun dir -> archive_bytes (Harness.Fleet.cases_path dir)),
      Obs.Json.to_string (Obs.Coverage.to_json m.Harness.Fleet.merged_coverage),
      Obs.Json.to_string (Difftest.Stats.to_json m.Harness.Fleet.merged_stats),
      List.map
        (fun c -> Obs.Json.to_string (Difftest.Case.to_json c))
        m.Harness.Fleet.cases )

let test_fleet_shard_invariance () =
  let reference =
    with_tmpdir ~prefix:"llm4fp-fleet-n1" @@ fun root -> observe_fleet ~root 1
  in
  let _, ref_traces, ref_archives, _, _, ref_cases = reference in
  check_bool "reference ran chunks" true (List.length ref_traces > 1);
  check_bool "reference traces non-empty" true
    (List.for_all (fun t -> String.length t > 0) ref_traces);
  check_bool "reference recorded cases" true (List.length ref_cases > 0);
  check_bool "reference archives non-empty" true
    (List.exists (fun a -> a <> []) ref_archives);
  List.iter
    (fun n ->
      let obs =
        with_tmpdir ~prefix:(Printf.sprintf "llm4fp-fleet-n%d" n)
        @@ fun root -> observe_fleet ~root n
      in
      check_bool
        (Printf.sprintf
           "N=%d fleet byte-identical to single-process reference" n)
        true (obs = reference))
    [ 2; 4 ]

(* The same drill at the bandit approach: each chunk runs its own arm
   stream seeded from the chunk seed, so shard count must not move a
   draw anywhere in the tree. *)
let test_fleet_bandit_invariance () =
  let observe n =
    with_tmpdir ~prefix:(Printf.sprintf "llm4fp-fleet-bandit-n%d" n)
    @@ fun root -> observe_fleet ~approach:Harness.Approach.Bandit ~root n
  in
  let reference = observe 1 in
  let _, ref_traces, _, _, _, _ = reference in
  check_bool "bandit reference traces non-empty" true
    (List.for_all (fun t -> String.length t > 0) ref_traces);
  List.iter
    (fun n ->
      check_bool
        (Printf.sprintf
           "N=%d bandit fleet byte-identical to single-process reference" n)
        true
        (observe n = reference))
    [ 3 ]

(* The partition itself: shard slices are pairwise disjoint and jointly
   exhaustive over the budget, at every N. *)
let test_shard_partition () =
  let budget = 103 and seed = 42 in
  let plan = Harness.Shard.plan ~chunk:7 ~budget ~seed () in
  List.iter
    (fun n ->
      let slices =
        List.init n (fun i ->
            Harness.Shard.assigned { Harness.Shard.index = i; count = n } plan)
      in
      let slots =
        List.concat_map (List.concat_map Harness.Shard.slots) slices
      in
      check_int
        (Printf.sprintf "N=%d jointly exhaustive" n)
        budget (List.length slots);
      let sorted = List.sort_uniq compare slots in
      check_bool
        (Printf.sprintf "N=%d pairwise disjoint" n)
        true
        (List.length sorted = budget
        && sorted = List.init budget (fun i -> i + 1)))
    [ 1; 2; 3; 4; 5 ];
  (* chunk seeds are derived per chunk, independent of N *)
  let seeds = List.map (fun s -> s.Harness.Shard.seed) plan in
  check_int "one derived seed per chunk" (List.length plan)
    (List.length (List.sort_uniq compare seeds))

let () =
  Alcotest.run "harness"
    [
      ( "campaign",
        [
          Alcotest.test_case "accounting" `Slow test_campaign_accounting;
          Alcotest.test_case "deterministic" `Slow test_campaign_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_campaign_seed_sensitivity;
          Alcotest.test_case "varity no llm" `Quick test_varity_no_llm;
          Alcotest.test_case "llm latency" `Quick test_llm_has_latency;
          Alcotest.test_case "feedback set" `Quick test_feedback_set_only_llm4fp;
          Alcotest.test_case "approach names" `Quick test_approach_names;
          Alcotest.test_case "time model" `Quick test_time_model_monotonic;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "tables render" `Slow test_tables_render;
          Alcotest.test_case "table1 config" `Quick test_table1_is_configuration;
          Alcotest.test_case "table2 approaches" `Slow test_table2_mentions_all_approaches;
          Alcotest.test_case "table5 pairs" `Slow test_table5_has_pairs;
          Alcotest.test_case "table6 within" `Slow test_table6_within_compilers;
          Alcotest.test_case "outcome accessor" `Slow test_outcome_accessor;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "suite byte-identical across jobs" `Slow
            test_parallel_suite_byte_identical;
          Alcotest.test_case "campaign outcome across jobs" `Slow
            test_parallel_campaign_same_outcome;
        ] );
      ( "bandit",
        [
          Alcotest.test_case "arm accounting" `Slow
            test_bandit_campaign_accounting;
          Alcotest.test_case "byte-identical across jobs" `Slow
            test_bandit_byte_identical_across_jobs;
          Alcotest.test_case "fleet shard invariance" `Slow
            test_fleet_bandit_invariance;
        ] );
      ( "engine",
        [
          Alcotest.test_case "fleet shard invariance" `Slow
            test_fleet_shard_invariance;
          Alcotest.test_case "shard partition laws" `Quick
            test_shard_partition;
          Alcotest.test_case "tree/vm x jobs indistinguishable" `Slow
            test_engine_equivalence;
        ] );
      ( "precision",
        [
          Alcotest.test_case "fp32 llm4fp" `Slow test_fp32_campaign;
          Alcotest.test_case "fp32 varity" `Quick test_fp32_varity_campaign;
        ] );
      ( "stability",
        [
          Alcotest.test_case "seed table renders" `Slow (fun () ->
              let t =
                Harness.Experiments.seed_stability ~budget:20 ~seeds:[ 1; 2 ] ()
              in
              check_bool "mentions approaches" true
                (Util.Text.contains_sub t "LLM4FP"
                && Util.Text.contains_sub t "mean"));
        ] );
      ( "ablation",
        [
          Alcotest.test_case "variants shape" `Quick test_ablation_variants_shape;
          Alcotest.test_case "replay semantics" `Slow test_ablation_replay_reduces;
        ] );
    ]
