(* Tests for lib/diversity: BLEU, AST match, CodeBLEU, clone detection. *)

open Helpers

let p1 = parse {|
void compute(double x, double* a) {
  double comp = 0.0;
  for (int i = 0; i < 8; ++i) {
    comp += a[i] * x;
  }
}
|}

(* p1 with consistently renamed identifiers *)
let p1_renamed = Lang.Ast.rename (fun n -> n ^ "_r") p1

(* p1 with one literal changed *)
let p1_lit = parse {|
void compute(double x, double* a) {
  double comp = 0.0;
  for (int i = 0; i < 8; ++i) {
    comp += a[i] * x;
  }
  comp *= 2.0;
}
|}

let p2 = parse {|
void compute(double u, double v) {
  double comp = 0.0;
  comp = sin(u) / (1.0 + cos(v));
}
|}

let arbitrary_program =
  QCheck.make
    ~print:(fun p -> Lang.Pp.to_c p)
    (QCheck.Gen.map
       (fun seed -> Gen.Varity.generate (Util.Rng.of_int seed))
       QCheck.Gen.int)

(* ------------------------------------------------------------------ *)
(* Bleu *)

let tokens p =
  Cparse.Lex.tokens (Lang.Pp.compute_to_string p)
  |> List.map Cparse.Lex.to_string

let test_bleu_identical () =
  let t = Diversity.Bleu.table (tokens p1) in
  check_float ~eps:1e-9 "self = 1" 1.0 (Diversity.Bleu.score ~candidate:t ~reference:t)

let test_bleu_disjoint_low () =
  let a = Diversity.Bleu.table [ "a"; "b"; "c"; "d"; "e"; "f" ] in
  let b = Diversity.Bleu.table [ "u"; "v"; "w"; "x"; "y"; "z" ] in
  check_bool "near zero" true (Diversity.Bleu.score ~candidate:a ~reference:b < 0.01)

let test_bleu_brevity_penalty () =
  (* a perfectly matching prefix still scores below 1 when the candidate
     is shorter than the reference *)
  let reference = Diversity.Bleu.table [ "a"; "b"; "c"; "d"; "e"; "f" ] in
  let prefix = Diversity.Bleu.table [ "a"; "b"; "c" ] in
  let s = Diversity.Bleu.score ~candidate:prefix ~reference in
  check_bool "penalized" true (s < 0.5);
  check_bool "not zero" true (s > 0.0)

let test_bleu_weighted_keywords () =
  (* matching a keyword counts more under the weighted table *)
  let w = Diversity.Codebleu.keyword_weight in
  check_float ~eps:1e-9 "keyword weight" 4.0 (w "double");
  check_float ~eps:1e-9 "plain weight" 1.0 (w "alpha")

let qcheck_bleu_bounds =
  QCheck.Test.make ~name:"BLEU score in [0,1]" ~count:100
    QCheck.(pair arbitrary_program arbitrary_program)
    (fun (a, b) ->
      let ta = Diversity.Bleu.table (tokens a) in
      let tb = Diversity.Bleu.table (tokens b) in
      let s = Diversity.Bleu.score ~candidate:ta ~reference:tb in
      s >= 0.0 && s <= 1.0)

(* ------------------------------------------------------------------ *)
(* Ast_match *)

let test_ast_match_self () =
  let s = Diversity.Ast_match.summarize p1 in
  check_float ~eps:1e-9 "self" 1.0 (Diversity.Ast_match.score ~candidate:s ~reference:s)

let test_ast_match_rename_invariant () =
  let a = Diversity.Ast_match.summarize p1 in
  let b = Diversity.Ast_match.summarize p1_renamed in
  check_float ~eps:1e-9 "renaming invisible" 1.0 (Diversity.Ast_match.score ~candidate:a ~reference:b)

let test_ast_match_different_structures () =
  let a = Diversity.Ast_match.summarize p1 in
  let b = Diversity.Ast_match.summarize p2 in
  check_bool "below 0.5" true (Diversity.Ast_match.score ~candidate:a ~reference:b < 0.5)

(* ------------------------------------------------------------------ *)
(* Codebleu *)

let test_codebleu_self () =
  let s = Diversity.Codebleu.summarize p1 in
  check_float ~eps:1e-9 "self = 1" 1.0 (Diversity.Codebleu.pair_score ~candidate:s ~reference:s)

let test_codebleu_rename_high () =
  let a = Diversity.Codebleu.summarize p1 in
  let b = Diversity.Codebleu.summarize p1_renamed in
  (* token BLEU drops, but AST and dataflow components stay at 1 *)
  let s = Diversity.Codebleu.symmetric a b in
  check_bool "well above half" true (s > 0.5);
  check_bool "below identity" true (s < 1.0)

let test_codebleu_unrelated_low () =
  let a = Diversity.Codebleu.summarize p1 in
  let b = Diversity.Codebleu.summarize p2 in
  check_bool "low" true (Diversity.Codebleu.symmetric a b < 0.45)

let test_codebleu_symmetric () =
  let a = Diversity.Codebleu.summarize p1 in
  let b = Diversity.Codebleu.summarize p1_lit in
  check_float ~eps:1e-9 "mean of directions"
    (0.5 *. (Diversity.Codebleu.pair_score ~candidate:a ~reference:b
            +. Diversity.Codebleu.pair_score ~candidate:b ~reference:a))
    (Diversity.Codebleu.symmetric a b)

let test_corpus_mean_small () =
  let mean = Diversity.Codebleu.corpus_mean ~seed:1 [ p1; p1_renamed; p2 ] in
  check_bool "bounded" true (mean > 0.0 && mean < 1.0)

let test_corpus_mean_sampled_deterministic () =
  let programs =
    List.init 40 (fun i -> Gen.Varity.generate (Util.Rng.of_int i))
  in
  let a = Diversity.Codebleu.corpus_mean ~max_pairs:100 ~seed:7 programs in
  let b = Diversity.Codebleu.corpus_mean ~max_pairs:100 ~seed:7 programs in
  check_float ~eps:1e-9 "same sample same mean" a b

let qcheck_codebleu_bounds =
  QCheck.Test.make ~name:"CodeBLEU in [0,1]" ~count:60
    QCheck.(pair arbitrary_program arbitrary_program)
    (fun (a, b) ->
      let s =
        Diversity.Codebleu.symmetric (Diversity.Codebleu.summarize a)
          (Diversity.Codebleu.summarize b)
      in
      s >= 0.0 && s <= 1.0)

(* ------------------------------------------------------------------ *)
(* Clones *)

let test_clone_keys () =
  check_bool "type1: identical" true
    (Diversity.Clones.type1_key p1 = Diversity.Clones.type1_key p1);
  check_bool "type1: rename breaks" false
    (Diversity.Clones.type1_key p1 = Diversity.Clones.type1_key p1_renamed);
  check_bool "type2c: consistent rename matches" true
    (Diversity.Clones.type2c_key p1 = Diversity.Clones.type2c_key p1_renamed);
  check_bool "type2: literal change invisible" true
    (Diversity.Clones.type2_key p1
    = Diversity.Clones.type2_key
        (Lang.Ast.map_exprs
           (fun e -> match e with Lang.Ast.Lit _ -> Lang.Ast.Lit 9.75 | e -> e)
           p1.Lang.Ast.body
         |> fun body -> { p1 with Lang.Ast.body }))

let test_clone_hierarchy () =
  (* Type-1 implies Type-2c implies Type-2 *)
  check_bool "t2c for renamed" true
    (Diversity.Clones.type2_key p1 = Diversity.Clones.type2_key p1_renamed)

let test_analyze_buckets () =
  let r = Diversity.Clones.analyze [ p1; p1; p1_renamed; p2 ] in
  check_int "one type1 (second copy)" 1 r.Diversity.Clones.type1;
  check_int "one type2c (renamed)" 1 r.Diversity.Clones.type2c;
  check_int "no bare type2" 0 r.Diversity.Clones.type2;
  check_int "total" 4 r.Diversity.Clones.total_programs;
  Alcotest.(check (float 0.01)) "percentage" 50.0 (Diversity.Clones.percentage r)

let test_analyze_distinct () =
  let programs = List.init 20 (fun i -> Gen.Varity.generate (Util.Rng.of_int i)) in
  let r = Diversity.Clones.analyze programs in
  check_int "random programs are not clones" 0
    (r.Diversity.Clones.type1 + r.Diversity.Clones.type2 + r.Diversity.Clones.type2c)

let () =
  Alcotest.run "diversity"
    [
      ( "bleu",
        [
          Alcotest.test_case "identical" `Quick test_bleu_identical;
          Alcotest.test_case "disjoint" `Quick test_bleu_disjoint_low;
          Alcotest.test_case "brevity penalty" `Quick test_bleu_brevity_penalty;
          Alcotest.test_case "keyword weights" `Quick test_bleu_weighted_keywords;
          QCheck_alcotest.to_alcotest qcheck_bleu_bounds;
        ] );
      ( "ast_match",
        [
          Alcotest.test_case "self" `Quick test_ast_match_self;
          Alcotest.test_case "rename invariant" `Quick test_ast_match_rename_invariant;
          Alcotest.test_case "different structures" `Quick test_ast_match_different_structures;
        ] );
      ( "codebleu",
        [
          Alcotest.test_case "self" `Quick test_codebleu_self;
          Alcotest.test_case "rename high" `Quick test_codebleu_rename_high;
          Alcotest.test_case "unrelated low" `Quick test_codebleu_unrelated_low;
          Alcotest.test_case "symmetric" `Quick test_codebleu_symmetric;
          Alcotest.test_case "corpus mean" `Quick test_corpus_mean_small;
          Alcotest.test_case "sampled deterministic" `Quick test_corpus_mean_sampled_deterministic;
          QCheck_alcotest.to_alcotest qcheck_codebleu_bounds;
        ] );
      ( "clones",
        [
          Alcotest.test_case "keys" `Quick test_clone_keys;
          Alcotest.test_case "hierarchy" `Quick test_clone_hierarchy;
          Alcotest.test_case "bucket accounting" `Quick test_analyze_buckets;
          Alcotest.test_case "distinct programs" `Quick test_analyze_distinct;
        ] );
    ]
