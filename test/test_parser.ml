(* Tests for lib/parser (cparse): lexing and parsing of the mini-C subset. *)

open Lang
open Helpers

let arbitrary_program =
  QCheck.make
    ~print:(fun p -> Pp.to_c p)
    (QCheck.Gen.map
       (fun seed -> Gen.Varity.generate (Util.Rng.of_int seed))
       QCheck.Gen.int)

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_tokens_basic () =
  let toks = Cparse.Lex.tokens "x += 3.5 * y[i];" in
  check_int "token count" 9 (List.length toks);
  check_bool "first ident" true (List.hd toks = Cparse.Lex.Ident "x")

let test_tokens_numbers () =
  check_bool "int" true (Cparse.Lex.tokens "42" = [ Cparse.Lex.Int_tok 42 ]);
  check_bool "float dot" true (Cparse.Lex.tokens "4.5" = [ Cparse.Lex.Float_tok 4.5 ]);
  check_bool "exponent" true
    (Cparse.Lex.tokens "1e-3" = [ Cparse.Lex.Float_tok 1e-3 ]);
  check_bool "suffix f" true
    (Cparse.Lex.tokens "2.5f" = [ Cparse.Lex.Float_tok 2.5 ]);
  check_bool "leading dot" true
    (Cparse.Lex.tokens ".5" = [ Cparse.Lex.Float_tok 0.5 ])

let test_tokens_comments () =
  check_bool "line comment" true
    (Cparse.Lex.tokens "a // comment\nb" = [ Cparse.Lex.Ident "a"; Cparse.Lex.Ident "b" ]);
  check_bool "block comment" true
    (Cparse.Lex.tokens "a /* x\ny */ b" = [ Cparse.Lex.Ident "a"; Cparse.Lex.Ident "b" ]);
  check_bool "preprocessor" true
    (Cparse.Lex.tokens "#include <stdio.h>\nx" = [ Cparse.Lex.Ident "x" ])

let test_tokens_operators () =
  let open Cparse.Lex in
  check_bool "compound" true (tokens "+= -= *= /=" = [ Plus_eq; Minus_eq; Star_eq; Slash_eq ]);
  check_bool "comparisons" true (tokens "< <= > >= == !=" = [ Lt; Le; Gt; Ge; Eq_eq; Ne ]);
  check_bool "launch" true (tokens "<<<" = [ Lshift; Lt ]);
  check_bool "increment" true (tokens "++i" = [ Plus_plus; Ident "i" ])

let test_tokens_string_literal () =
  match Cparse.Lex.tokens {|printf("%.17g\n", comp);|} with
  | Cparse.Lex.Ident "printf" :: Cparse.Lex.Lparen :: Cparse.Lex.String_lit s :: _ ->
    check_bool "escape kept" true (Util.Text.contains_sub s "17g")
  | _ -> Alcotest.fail "unexpected token stream"

let test_lex_error () =
  check_bool "raises" true
    (match Cparse.Lex.tokens "a $ b" with
     | exception Cparse.Lex.Error msg -> Util.Text.contains_sub msg "line 1"
     | _ -> false)

let test_is_keyword () =
  check_bool "double" true (Cparse.Lex.is_keyword "double");
  check_bool "sin" true (Cparse.Lex.is_keyword "sin");
  check_bool "user ident" false (Cparse.Lex.is_keyword "alpha")

(* ------------------------------------------------------------------ *)
(* Expressions *)

let parse_expr_exn s =
  match Cparse.Parse.expr s with Ok e -> e | Error m -> failwith m

let test_expr_precedence () =
  check_bool "mul binds tighter" true
    (parse_expr_exn "a + b * c"
    = Ast.Bin (Ast.Add, Ast.Var "a", Ast.Bin (Ast.Mul, Ast.Var "b", Ast.Var "c")));
  check_bool "left assoc" true
    (parse_expr_exn "a - b - c"
    = Ast.Bin (Ast.Sub, Ast.Bin (Ast.Sub, Ast.Var "a", Ast.Var "b"), Ast.Var "c"));
  check_bool "parens override" true
    (parse_expr_exn "(a + b) * c"
    = Ast.Bin (Ast.Mul, Ast.Bin (Ast.Add, Ast.Var "a", Ast.Var "b"), Ast.Var "c"))

let test_expr_unary_minus () =
  check_bool "fold into literal" true (parse_expr_exn "-3.5" = Ast.Lit (-3.5));
  check_bool "neg of var" true (parse_expr_exn "-x" = Ast.Neg (Ast.Var "x"));
  check_bool "neg of parens" true
    (parse_expr_exn "-(3.5)" = Ast.Neg (Ast.Lit 3.5));
  check_bool "binds tighter than mul" true
    (parse_expr_exn "-x * y"
    = Ast.Bin (Ast.Mul, Ast.Neg (Ast.Var "x"), Ast.Var "y"))

let test_expr_calls () =
  check_bool "unary call" true
    (parse_expr_exn "sin(x)" = Ast.Call (Ast.Sin, [ Ast.Var "x" ]));
  check_bool "binary call" true
    (parse_expr_exn "pow(x, 2.0)" = Ast.Call (Ast.Pow, [ Ast.Var "x"; Ast.Lit 2.0 ]));
  check_bool "f32 suffix accepted" true
    (parse_expr_exn "sinf(x)" = Ast.Call (Ast.Sin, [ Ast.Var "x" ]));
  check_bool "unknown fn rejected" true (Result.is_error (Cparse.Parse.expr "erf(x)"));
  check_bool "arity enforced" true (Result.is_error (Cparse.Parse.expr "pow(x)"))

let test_expr_index () =
  check_bool "subscript" true
    (parse_expr_exn "a[i + 1]"
    = Ast.Index ("a", Ast.Bin (Ast.Add, Ast.Var "i", Ast.Int_lit 1)))

(* ------------------------------------------------------------------ *)
(* Programs *)

let minimal = {|
void compute(double x) {
  double comp = 0.0;
  comp = x * 2.0;
}
|}

let test_parse_minimal () =
  let p = Cparse.Parse.program_exn minimal in
  check_int "one param" 1 (List.length p.Ast.params);
  check_int "comp decl dropped, one stmt" 1 (List.length p.Ast.body)

let test_parse_skips_printf_and_main () =
  let src = {|
#include <stdio.h>
void compute(double x) {
  double comp = 0.0;
  comp += x;
  printf("%.17g\n", comp);
}
int main(int argc, char* argv[]) {
  double x = atof(argv[1]);
  compute(x);
  return 0;
}
|} in
  let p = Cparse.Parse.program_exn src in
  check_int "printf skipped" 1 (List.length p.Ast.body)

let test_array_length_recovery () =
  let src = {|
void compute(double* buf) {
  double comp = 0.0;
  comp += buf[11];
}
int main(int argc, char* argv[]) {
  double buf[12];
  compute(buf);
  return 0;
}
|} in
  let p = Cparse.Parse.program_exn src in
  check_bool "length 12 recovered" true
    (p.Ast.params = [ Ast.P_fp_array ("buf", 12) ])

let test_array_length_default () =
  let src = "void compute(double* buf) { double comp = 0.0; comp += buf[0]; }" in
  let p = Cparse.Parse.program_exn ~default_array_len:8 src in
  check_bool "default 8" true (p.Ast.params = [ Ast.P_fp_array ("buf", 8) ])

let test_nonzero_comp_init_becomes_assign () =
  let src = "void compute(double x) { double comp = x + 1.0; comp *= 2.0; }" in
  let p = Cparse.Parse.program_exn src in
  check_int "two statements" 2 (List.length p.Ast.body);
  match List.hd p.Ast.body with
  | Ast.Assign { lhs = Ast.Lv_var "comp"; op = Ast.Set; _ } -> ()
  | _ -> Alcotest.fail "expected comp assignment"

let test_f32_detection () =
  let src = "void compute(float x) { float comp = 0.0; comp = sinf(x); }" in
  let p = Cparse.Parse.program_exn src in
  check_bool "precision F32" true (p.Ast.precision = Ast.F32)

let test_loop_forms () =
  let src = {|
void compute(double x) {
  double comp = 0.0;
  for (int i = 0; i < 10; i++) {
    comp += x;
  }
}
|} in
  let p = Cparse.Parse.program_exn src in
  check_bool "postfix ++ accepted" true (Ast.loop_count p = 1)

let test_rejections () =
  let rejected src = Result.is_error (Cparse.Parse.program src) in
  check_bool "no compute" true (rejected "int main() { return 0; }");
  check_bool "else rejected" true
    (rejected
       "void compute(double x) { double comp = 0.0; if (x > 0.0) { comp = \
        1.0; } else { comp = 2.0; } }");
  check_bool "nonzero loop start" true
    (rejected
       "void compute(double x) { double comp = 0.0; for (int i = 1; i < 4; \
        ++i) { comp += x; } }");
  check_bool "wrong counter in condition" true
    (rejected
       "void compute(double x) { double comp = 0.0; for (int i = 0; j < 4; \
        ++i) { comp += x; } }");
  check_bool "uninitialized declaration" true
    (rejected "void compute(double x) { double comp = 0.0; double y; comp = x; }");
  check_bool "while rejected" true
    (rejected
       "void compute(double x) { double comp = 0.0; while (x > 0.0) { comp \
        = 1.0; } }")

let test_cuda_roundtrip () =
  let p = Gen.Varity.generate (Util.Rng.of_int 2024) in
  match Cparse.Parse.program (Pp.to_cuda p) with
  | Ok p2 -> check_bool "cuda parses to same program" true (Ast.equal p p2)
  | Error m -> Alcotest.fail m

let qcheck_c_roundtrip =
  QCheck.Test.make ~name:"parse (print p) = p for random programs" ~count:300
    arbitrary_program (fun p ->
      match Cparse.Parse.program (Pp.to_c p) with
      | Ok p2 -> Ast.equal p p2
      | Error _ -> false)

let qcheck_cuda_roundtrip =
  QCheck.Test.make ~name:"CUDA translation parses back to same program"
    ~count:150 arbitrary_program (fun p ->
      match Cparse.Parse.program (Pp.to_cuda p) with
      | Ok p2 -> Ast.equal p p2
      | Error _ -> false)

let qcheck_expr_roundtrip =
  QCheck.Test.make ~name:"expression print/parse roundtrip" ~count:300
    arbitrary_program (fun p ->
      (* take every top-level rhs of the program and round-trip it *)
      let ok = ref true in
      ignore
        (Ast.map_exprs
           (fun e ->
             (match Cparse.Parse.expr (Pp.expr_to_string Ast.F64 e) with
              | Ok e2 when e2 = e -> ()
              | _ -> ok := false);
             e)
           p.Ast.body);
      !ok)

let () =
  Alcotest.run "parser"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_tokens_basic;
          Alcotest.test_case "numbers" `Quick test_tokens_numbers;
          Alcotest.test_case "comments" `Quick test_tokens_comments;
          Alcotest.test_case "operators" `Quick test_tokens_operators;
          Alcotest.test_case "string literal" `Quick test_tokens_string_literal;
          Alcotest.test_case "error position" `Quick test_lex_error;
          Alcotest.test_case "keywords" `Quick test_is_keyword;
        ] );
      ( "expressions",
        [
          Alcotest.test_case "precedence" `Quick test_expr_precedence;
          Alcotest.test_case "unary minus" `Quick test_expr_unary_minus;
          Alcotest.test_case "calls" `Quick test_expr_calls;
          Alcotest.test_case "indexing" `Quick test_expr_index;
        ] );
      ( "programs",
        [
          Alcotest.test_case "minimal" `Quick test_parse_minimal;
          Alcotest.test_case "skips printf/main" `Quick test_parse_skips_printf_and_main;
          Alcotest.test_case "array length recovery" `Quick test_array_length_recovery;
          Alcotest.test_case "array length default" `Quick test_array_length_default;
          Alcotest.test_case "comp init" `Quick test_nonzero_comp_init_becomes_assign;
          Alcotest.test_case "f32 detection" `Quick test_f32_detection;
          Alcotest.test_case "loop forms" `Quick test_loop_forms;
          Alcotest.test_case "rejections" `Quick test_rejections;
          Alcotest.test_case "cuda roundtrip (single)" `Quick test_cuda_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_c_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_cuda_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_expr_roundtrip;
        ] );
    ]
