(* Crash-safety tests: atomic durable writes, deterministic fault
   injection, bounded retry, and the headline property — a campaign
   killed at any point and resumed from its last checkpoint finishes
   with the same outcome, the same trace bytes and the same case
   archive as one that never crashed, at any job count. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Util.Durable *)

let test_write_atomic () =
  with_tmpdir ~prefix:"llm4fp-durable" @@ fun dir ->
  Util.Durable.mkdir_p (Filename.concat dir "a/b/c");
  check_bool "mkdir_p nests" true
    (Sys.is_directory (Filename.concat dir "a/b/c"));
  let path = Filename.concat dir "a/file.txt" in
  Util.Durable.write_string ~path "first";
  check_string "written" "first" (read_file path);
  Util.Durable.write_string ~path "second";
  check_string "replaced" "second" (read_file path);
  (* A writer that dies mid-write must leave the previous content
     intact and no temp litter behind. *)
  (match
     Util.Durable.write_atomic ~path (fun oc ->
         output_string oc "torn";
         failwith "injected")
   with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "failing writer did not raise");
  check_string "old content survives a torn write" "second" (read_file path);
  check_bool "no temp files left" true
    (Array.for_all
       (fun f -> f = "file.txt" || f = "b")
       (Sys.readdir (Filename.dirname path)))

(* ------------------------------------------------------------------ *)
(* Exec.Faults *)

let test_faults_parse () =
  let roundtrip spec =
    match Exec.Faults.parse spec with
    | Error msg -> Alcotest.fail (spec ^ ": " ^ msg)
    | Ok plan -> begin
      match Exec.Faults.parse (Exec.Faults.to_string plan) with
      | Error msg -> Alcotest.fail ("reparse: " ^ msg)
      | Ok plan' -> check_bool ("round-trips: " ^ spec) true (plan = plan')
    end
  in
  roundtrip "";
  roundtrip "llm@3:crash";
  roundtrip "llm@3:crash,frontend@5:fail,exec@10:delay=0.01";
  roundtrip "backend@1:fail,archive@2:crash,checkpoint@7:delay=1.5";
  List.iter
    (fun bad ->
      match Exec.Faults.parse bad with
      | Ok _ -> Alcotest.fail ("accepted malformed spec: " ^ bad)
      | Error msg -> check_bool "error non-empty" true (String.length msg > 0))
    [ "nosuchstage@1:crash"; "llm@0:crash"; "llm@x:crash"; "llm@1:explode";
      "llm@1"; "llm:crash"; "exec@2:delay=fast" ]

let test_faults_fire_on_exact_hit () =
  Fun.protect ~finally:Exec.Faults.disarm @@ fun () ->
  Exec.Faults.arm
    [ { Exec.Faults.stage = Exec.Faults.Execution;
        hit = 2;
        action = Exec.Faults.Fail } ];
  Exec.Faults.inject Exec.Faults.Execution;
  (match Exec.Faults.inject Exec.Faults.Execution with
  | exception Exec.Faults.Transient _ -> ()
  | () -> Alcotest.fail "rule did not fire on its hit");
  Exec.Faults.inject Exec.Faults.Execution;
  (* other stages keep their own counters *)
  Exec.Faults.inject Exec.Faults.Llm_call;
  Exec.Faults.inject Exec.Faults.Llm_call;
  Exec.Faults.inject Exec.Faults.Llm_call

let test_backoff () =
  check_float "attempt 1" 0.25 (Exec.Faults.backoff ~attempt:1);
  check_float "attempt 2" 0.5 (Exec.Faults.backoff ~attempt:2);
  check_float "attempt 3" 1.0 (Exec.Faults.backoff ~attempt:3);
  match Exec.Faults.backoff ~attempt:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "attempt 0 accepted"

(* ------------------------------------------------------------------ *)
(* Retry policies *)

let grammar = Llm.Prompt.Grammar { precision = Lang.Ast.F64 }

let test_llm_retry_transparent () =
  Fun.protect ~finally:Exec.Faults.disarm @@ fun () ->
  Exec.Faults.disarm ();
  let clean = Llm.Client.generate (Llm.Client.create ~seed:7 ()) grammar in
  Exec.Faults.arm
    [ { Exec.Faults.stage = Exec.Faults.Llm_call;
        hit = 1;
        action = Exec.Faults.Fail } ];
  let retried = Llm.Client.generate (Llm.Client.create ~seed:7 ()) grammar in
  check_string "retried call returns the identical program"
    clean.Llm.Client.source retried.Llm.Client.source;
  check_float ~eps:1e-12 "one backoff charged into the latency"
    (clean.Llm.Client.latency +. Exec.Faults.backoff ~attempt:1)
    retried.Llm.Client.latency

let test_llm_retry_exhaustion () =
  Fun.protect ~finally:Exec.Faults.disarm @@ fun () ->
  Exec.Faults.arm
    (List.map
       (fun hit ->
         { Exec.Faults.stage = Exec.Faults.Llm_call;
           hit;
           action = Exec.Faults.Fail })
       [ 1; 2; 3 ]);
  match Llm.Client.generate (Llm.Client.create ~seed:7 ()) grammar with
  | exception Exec.Faults.Transient _ -> ()
  | _ -> Alcotest.fail "three consecutive failures did not exhaust the retries"

let test_driver_retry () =
  Fun.protect ~finally:Exec.Faults.disarm @@ fun () ->
  let config =
    Compiler.Config.make Compiler.Personality.Gcc Compiler.Optlevel.O0
  in
  let program = Gen.Varity.generate (Util.Rng.of_int 3) in
  Exec.Faults.arm
    [ { Exec.Faults.stage = Exec.Faults.Front_end;
        hit = 1;
        action = Exec.Faults.Fail } ];
  (match Compiler.Driver.compile config program with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("compile failed despite retry: " ^ msg));
  Exec.Faults.disarm ();
  (* exhaustion surfaces the Transient to the caller *)
  let other = Gen.Varity.generate (Util.Rng.of_int 4) in
  Exec.Faults.arm
    (List.map
       (fun hit ->
         { Exec.Faults.stage = Exec.Faults.Front_end;
           hit;
           action = Exec.Faults.Fail })
       [ 1; 2; 3 ]);
  match Compiler.Driver.compile config other with
  | exception Exec.Faults.Transient _ -> ()
  | _ -> Alcotest.fail "front-end retries never exhausted"

(* ------------------------------------------------------------------ *)
(* Checkpoint codec *)

let test_checkpoint_roundtrip () =
  with_tmpdir ~prefix:"llm4fp-ckpt-rt" @@ fun dir ->
  let outcome =
    Harness.Campaign.run ~budget:10 ~checkpoint:(dir, 5) ~seed:11
      Harness.Approach.Llm4fp
  in
  ignore outcome;
  match Checkpoint.load ~dir with
  | Error msg -> Alcotest.fail msg
  | Ok snap ->
    check_int "seed" 11 snap.Checkpoint.seed;
    check_string "approach" (Harness.Approach.name Harness.Approach.Llm4fp)
      snap.Checkpoint.approach;
    check_int "budget" 10 snap.Checkpoint.budget;
    check_string "precision" "fp64" snap.Checkpoint.precision;
    check_int "next slot" 6 snap.Checkpoint.next_slot;
    check_bool "slots within the boundary" true
      (List.length snap.Checkpoint.slots <= 5)

let test_checkpoint_load_errors () =
  with_tmpdir ~prefix:"llm4fp-ckpt-err" @@ fun dir ->
  (match Checkpoint.load ~dir with
  | Ok _ -> Alcotest.fail "loaded a checkpoint from an empty directory"
  | Error msg -> check_bool "missing file named" true (String.length msg > 0));
  ignore
    (Harness.Campaign.run ~budget:10 ~checkpoint:(dir, 5) ~seed:11
       Harness.Approach.Llm4fp);
  let path = Checkpoint.path ~dir in
  let whole = read_file path in
  (* drop the last line: the slot count in the header no longer matches *)
  let cut = String.rindex_from whole (String.length whole - 2) '\n' in
  let oc = open_out_bin path in
  output_string oc (String.sub whole 0 (cut + 1));
  close_out oc;
  match Checkpoint.load ~dir with
  | Ok _ -> Alcotest.fail "loaded a truncated checkpoint"
  | Error msg ->
    check_bool "truncation diagnosed" true
      (String.length msg > 0)

let test_resume_mismatch () =
  with_tmpdir ~prefix:"llm4fp-ckpt-mismatch" @@ fun dir ->
  ignore
    (Harness.Campaign.run ~budget:10 ~checkpoint:(dir, 5) ~seed:11
       Harness.Approach.Llm4fp);
  match Checkpoint.load ~dir with
  | Error msg -> Alcotest.fail msg
  | Ok snap -> begin
    match
      Harness.Campaign.run ~budget:10 ~resume:snap ~seed:12
        Harness.Approach.Llm4fp
    with
    | exception Invalid_argument msg ->
      check_bool "mismatch named" true (String.length msg > 0)
    | _ -> Alcotest.fail "resumed a checkpoint under a different seed"
  end

(* ------------------------------------------------------------------ *)
(* Kill-and-resume byte identity *)

let budget = 20
let interval = 6
let seed = 20250704

type run_signature = {
  sig_stats : string;
  sig_programs : string list;
  sig_successful : int;
  sig_generation_failures : int;
  sig_sim_seconds : float;
  sig_llm_seconds : float;
  sig_coverage : string;
      (* serialized coverage ledger: resume must rebuild it byte for
         byte, including the rolling window and novelty clock *)
}

let signature (o : Harness.Campaign.outcome) =
  {
    sig_stats = Obs.Json.to_string (Difftest.Stats.to_json o.Harness.Campaign.stats);
    sig_programs = List.map Lang.Pp.to_c o.Harness.Campaign.programs;
    sig_successful = o.Harness.Campaign.successful;
    sig_generation_failures = o.Harness.Campaign.generation_failures;
    sig_sim_seconds = o.Harness.Campaign.sim_seconds;
    sig_llm_seconds = o.Harness.Campaign.llm_seconds;
    sig_coverage =
      Obs.Json.to_string (Obs.Coverage.to_json o.Harness.Campaign.coverage);
  }

(* The uninterrupted reference: outcome signature, trace bytes, archive
   bytes. Computed once per process. *)
let reference =
  lazy
    (with_tmpdir ~prefix:"llm4fp-ckpt-ref" @@ fun root ->
     let outcome, trace, arch = run_traced_campaign ~budget ~seed ~root () in
     (signature outcome, read_file trace, archive_bytes arch))

(* Kill a checkpointing campaign with the injected [faults] plan (which
   must fire), resume from the surviving snapshot, and require the
   finished run to be indistinguishable from the reference. *)
let check_kill_resume ~name ~jobs faults =
  let ref_sig, ref_trace, ref_archive = Lazy.force reference in
  with_tmpdir ~prefix:("llm4fp-ckpt-" ^ name) @@ fun root ->
  Util.Durable.mkdir_p root;
  let ckpt = Filename.concat root "ckpt" in
  let arch = Filename.concat root "cases" in
  let trace = Filename.concat root "trace.jsonl" in
  Fun.protect ~finally:Exec.Faults.disarm @@ fun () ->
  (match Exec.Faults.parse faults with
  | Ok plan -> Exec.Faults.arm plan
  | Error msg -> Alcotest.fail msg);
  let recorder = Difftest.Recorder.create ~dir:arch in
  let oc = open_out_bin trace in
  let crashed =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Obs.Trace.with_sink
          (Obs.Sink.ordered (Obs.Sink.jsonl oc))
          (fun () ->
            match
              Harness.Campaign.run ~budget ~jobs ~recorder
                ~checkpoint:(ckpt, interval) ~seed Harness.Approach.Llm4fp
            with
            | exception Exec.Faults.Crash_injected _ -> true
            | _ -> false))
  in
  check_bool (name ^ ": injected crash fired") true crashed;
  Exec.Faults.disarm ();
  match Checkpoint.load ~dir:ckpt with
  | Error msg -> Alcotest.fail (name ^ ": surviving checkpoint unreadable: " ^ msg)
  | Ok snap ->
    let recorder = Difftest.Recorder.create ~dir:arch in
    let oc = Checkpoint.reopen_trace ~path:trace snap in
    let outcome =
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Obs.Trace.with_sink
            (Obs.Sink.ordered (Obs.Sink.jsonl oc))
            (fun () ->
              Harness.Campaign.run ~budget ~jobs ~recorder
                ~checkpoint:(ckpt, interval) ~resume:snap ~seed
                Harness.Approach.Llm4fp))
    in
    check_bool (name ^ ": outcome identical") true (signature outcome = ref_sig);
    check_bool (name ^ ": trace bytes identical") true
      (read_file trace = ref_trace);
    check_bool (name ^ ": case archive identical") true
      (archive_bytes arch = ref_archive)

let test_kill_at_checkpoint_write () =
  check_kill_resume ~name:"ckpt2-j1" ~jobs:1 "checkpoint@2:crash"

let test_kill_at_late_checkpoint_jobs4 () =
  check_kill_resume ~name:"ckpt3-j4" ~jobs:4 "checkpoint@3:crash"

let test_kill_mid_slot () =
  (* dies mid-slot (execution ~slot 10 — dedup leaves ~12 distinct
     executions per slot), well past the first snapshot *)
  check_kill_resume ~name:"exec-j1" ~jobs:1 "exec@120:crash"

let test_kill_mid_slot_jobs4 () =
  check_kill_resume ~name:"exec-j4" ~jobs:4 "exec@120:crash"

(* ------------------------------------------------------------------ *)
(* Bandit kill-and-resume: the arm posteriors, their dedicated RNG
   stream and the grow-seed pool all ride in the checkpoint, so a
   resumed bandit campaign must reproduce not just the outcome and the
   bytes but the bandit state itself. *)

let bandit_posterior (o : Harness.Campaign.outcome) =
  match o.Harness.Campaign.bandit with
  | None -> "none"
  | Some b -> Obs.Json.to_string (Harness.Bandit.to_json b)

(* An external seed pool for the grow arm, so the drill also exercises
   the grow-seed round-trip through the snapshot. *)
let bandit_grow_seeds =
  lazy
    (let rng = Util.Rng.of_int 77 in
     List.init 3 (fun _ -> Gen.Varity.generate rng))

let bandit_reference =
  lazy
    (with_tmpdir ~prefix:"llm4fp-bandit-ref" @@ fun root ->
     let outcome, trace, arch =
       run_traced_campaign ~budget ~seed ~approach:Harness.Approach.Bandit
         ~grow_seeds:(Lazy.force bandit_grow_seeds) ~root ()
     in
     (signature outcome, bandit_posterior outcome, read_file trace,
      archive_bytes arch))

let check_bandit_kill_resume ~name ~jobs faults =
  let ref_sig, ref_post, ref_trace, ref_archive = Lazy.force bandit_reference in
  let grow_seeds = Lazy.force bandit_grow_seeds in
  with_tmpdir ~prefix:("llm4fp-bandit-" ^ name) @@ fun root ->
  Util.Durable.mkdir_p root;
  let ckpt = Filename.concat root "ckpt" in
  let arch = Filename.concat root "cases" in
  let trace = Filename.concat root "trace.jsonl" in
  Fun.protect ~finally:Exec.Faults.disarm @@ fun () ->
  (match Exec.Faults.parse faults with
  | Ok plan -> Exec.Faults.arm plan
  | Error msg -> Alcotest.fail msg);
  let recorder = Difftest.Recorder.create ~dir:arch in
  let oc = open_out_bin trace in
  let crashed =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Obs.Trace.with_sink
          (Obs.Sink.ordered (Obs.Sink.jsonl oc))
          (fun () ->
            match
              Harness.Campaign.run ~budget ~jobs ~recorder
                ~checkpoint:(ckpt, interval) ~grow_seeds ~seed
                Harness.Approach.Bandit
            with
            | exception Exec.Faults.Crash_injected _ -> true
            | _ -> false))
  in
  check_bool (name ^ ": injected crash fired") true crashed;
  Exec.Faults.disarm ();
  match Checkpoint.load ~dir:ckpt with
  | Error msg -> Alcotest.fail (name ^ ": surviving checkpoint unreadable: " ^ msg)
  | Ok snap ->
    check_bool (name ^ ": snapshot carries bandit state") true
      (snap.Checkpoint.bandit <> None);
    let recorder = Difftest.Recorder.create ~dir:arch in
    let oc = Checkpoint.reopen_trace ~path:trace snap in
    let outcome =
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Obs.Trace.with_sink
            (Obs.Sink.ordered (Obs.Sink.jsonl oc))
            (fun () ->
              (* the resumed run still passes the caller's pool; the
                 snapshot's rendering of it must win (and here they
                 coincide, which is exactly the round-trip) *)
              Harness.Campaign.run ~budget ~jobs ~recorder
                ~checkpoint:(ckpt, interval) ~resume:snap ~grow_seeds ~seed
                Harness.Approach.Bandit))
    in
    check_bool (name ^ ": outcome identical") true (signature outcome = ref_sig);
    check_bool (name ^ ": bandit posterior identical") true
      (bandit_posterior outcome = ref_post);
    check_bool (name ^ ": trace bytes identical") true
      (read_file trace = ref_trace);
    check_bool (name ^ ": case archive identical") true
      (archive_bytes arch = ref_archive)

let test_bandit_kill_at_checkpoint () =
  check_bandit_kill_resume ~name:"ckpt2-j1" ~jobs:1 "checkpoint@2:crash"

let test_bandit_kill_mid_slot_jobs4 () =
  check_bandit_kill_resume ~name:"exec-j4" ~jobs:4 "exec@120:crash"

(* Checkpointing off the hot path: attaching it must change nothing. *)
let test_checkpointing_is_invisible () =
  let ref_sig, ref_trace, _ = Lazy.force reference in
  with_tmpdir ~prefix:"llm4fp-ckpt-inv" @@ fun root ->
  Util.Durable.mkdir_p root;
  let ckpt = Filename.concat root "ckpt" in
  let trace = Filename.concat root "trace.jsonl" in
  let arch = Filename.concat root "cases" in
  let recorder = Difftest.Recorder.create ~dir:arch in
  let oc = open_out_bin trace in
  let outcome =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Obs.Trace.with_sink
          (Obs.Sink.ordered (Obs.Sink.jsonl oc))
          (fun () ->
            Harness.Campaign.run ~budget ~recorder
              ~checkpoint:(ckpt, interval) ~seed Harness.Approach.Llm4fp))
  in
  check_bool "same outcome with checkpointing on" true
    (signature outcome = ref_sig);
  check_bool "same trace bytes with checkpointing on" true
    (read_file trace = ref_trace)

let () =
  Alcotest.run "checkpoint"
    [
      ( "durable",
        [ Alcotest.test_case "write_atomic" `Quick test_write_atomic ] );
      ( "faults",
        [
          Alcotest.test_case "parse round-trip" `Quick test_faults_parse;
          Alcotest.test_case "fires on exact hit" `Quick
            test_faults_fire_on_exact_hit;
          Alcotest.test_case "backoff schedule" `Quick test_backoff;
        ] );
      ( "retry",
        [
          Alcotest.test_case "llm retry is transparent" `Quick
            test_llm_retry_transparent;
          Alcotest.test_case "llm retries exhaust" `Quick
            test_llm_retry_exhaustion;
          Alcotest.test_case "driver retry" `Quick test_driver_retry;
        ] );
      ( "codec",
        [
          Alcotest.test_case "write/load round-trip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "load errors" `Quick test_checkpoint_load_errors;
          Alcotest.test_case "resume mismatch rejected" `Quick
            test_resume_mismatch;
        ] );
      ( "kill-resume",
        [
          Alcotest.test_case "crash at 2nd checkpoint (jobs 1)" `Slow
            test_kill_at_checkpoint_write;
          Alcotest.test_case "crash at 3rd checkpoint (jobs 4)" `Slow
            test_kill_at_late_checkpoint_jobs4;
          Alcotest.test_case "crash mid-slot (jobs 1)" `Slow test_kill_mid_slot;
          Alcotest.test_case "crash mid-slot (jobs 4)" `Slow
            test_kill_mid_slot_jobs4;
          Alcotest.test_case "checkpointing is invisible" `Slow
            test_checkpointing_is_invisible;
        ] );
      ( "bandit-kill-resume",
        [
          Alcotest.test_case "crash at 2nd checkpoint (jobs 1)" `Slow
            test_bandit_kill_at_checkpoint;
          Alcotest.test_case "crash mid-slot (jobs 4)" `Slow
            test_bandit_kill_mid_slot_jobs4;
        ] );
    ]
