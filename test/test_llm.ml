(* Tests for lib/llm: corpus, prompts, sampler, mutations, mock client. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Corpus *)

let test_corpus_size () =
  check_bool "at least 30 kernels" true (Array.length Llm.Corpus.entries >= 30)

let test_corpus_all_parse_and_validate () =
  Array.iter
    (fun (e : Llm.Corpus.entry) ->
      let p = Llm.Corpus.program e in
      check_bool (e.Llm.Corpus.name ^ " valid") true (Analysis.Validate.is_valid p))
    Llm.Corpus.entries

let test_corpus_names_unique () =
  let names = Array.to_list (Array.map (fun (e : Llm.Corpus.entry) -> e.Llm.Corpus.name) Llm.Corpus.entries) in
  check_int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_corpus_memoized () =
  let e = Llm.Corpus.entries.(0) in
  check_bool "same AST object" true (Llm.Corpus.program e == Llm.Corpus.program e)

let test_corpus_common_subset () =
  let n_common = Array.length Llm.Corpus.common_entries in
  check_bool "non-trivial common subset" true
    (n_common >= 10 && n_common < Array.length Llm.Corpus.entries)

let test_corpus_by_tag () =
  check_bool "reductions exist" true (Array.length (Llm.Corpus.by_tag Llm.Corpus.Reduction) > 0);
  Array.iter
    (fun (e : Llm.Corpus.entry) ->
      check_bool "tag respected" true (List.mem Llm.Corpus.Recurrence e.Llm.Corpus.tags))
    (Llm.Corpus.by_tag Llm.Corpus.Recurrence)

let test_corpus_runs_everywhere () =
  (* every kernel compiles and runs under every configuration *)
  let rng = Util.Rng.of_int 123 in
  Array.iter
    (fun (e : Llm.Corpus.entry) ->
      let p = Llm.Corpus.program e in
      let inputs = Gen.Generate.gen_inputs rng Llm.Client.generation_config p in
      List.iter
        (function
          | Either.Left (_, bin) -> ignore (Compiler.Driver.run bin inputs)
          | Either.Right (_, msg) -> Alcotest.failf "%s: %s" e.Llm.Corpus.name msg)
        (Compiler.Driver.matrix p))
    Llm.Corpus.entries

(* ------------------------------------------------------------------ *)
(* Prompts *)

let test_prompt_render_direct () =
  let text = Llm.Prompt.render (Llm.Prompt.Direct { precision = Lang.Ast.F64 }) in
  check_bool "mentions precision" true (Util.Text.contains_sub text "double");
  check_bool "guideline headers" true (Util.Text.contains_sub text "math.h");
  check_bool "plain code only" true (Util.Text.contains_sub text "plain code")

let test_prompt_render_grammar () =
  let text = Llm.Prompt.render (Llm.Prompt.Grammar { precision = Lang.Ast.F64 }) in
  check_bool "grammar included" true (Util.Text.contains_sub text "<expression>")

let test_prompt_render_mutate () =
  let example = Llm.Corpus.program Llm.Corpus.entries.(0) in
  let text = Llm.Prompt.render (Llm.Prompt.Mutate { precision = Lang.Ast.F64; example }) in
  check_bool "strategies listed" true
    (Util.Text.contains_sub text "intermediate computations");
  check_bool "example embedded" true (Util.Text.contains_sub text "compute");
  check_int "five strategies" 5 (List.length Llm.Prompt.mutation_strategy_names)

let test_token_count () =
  check_int "words" 3 (Llm.Prompt.token_count "a b\nc");
  check_int "empty" 0 (Llm.Prompt.token_count "")

(* ------------------------------------------------------------------ *)
(* Sampler *)

let test_sampler_penalties_spread_usage () =
  (* with penalties, a heavily weighted item must not monopolize *)
  let rng = Util.Rng.of_int 321 in
  let s = Llm.Sampler.create Llm.Sampler.paper_params in
  let heavy = ref 0 in
  for _ = 1 to 200 do
    match Llm.Sampler.pick s rng [| ("heavy", 8.0, `H); ("light", 1.0, `L) |] with
    | `H -> incr heavy
    | `L -> ()
  done;
  check_bool "heavy preferred" true (!heavy > 100);
  check_bool "light still sampled" true (!heavy < 195)

let test_sampler_records_usage () =
  let rng = Util.Rng.of_int 322 in
  let s = Llm.Sampler.create Llm.Sampler.paper_params in
  ignore (Llm.Sampler.pick s rng [| ("only", 1.0, ()) |]);
  check_int "usage recorded" 1 (Llm.Sampler.usage s "only")

let test_sampler_rejects_bad_params () =
  check_bool "temperature > 0" true
    (try ignore (Llm.Sampler.create { Llm.Sampler.paper_params with temperature = 0.0 }); false
     with Invalid_argument _ -> true)

let test_paper_params () =
  let p = Llm.Sampler.paper_params in
  check_bool "temperature 1.2" true (p.Llm.Sampler.temperature = 1.2);
  check_bool "frequency 0.5" true (p.Llm.Sampler.frequency_penalty = 0.5);
  check_bool "presence 0.6" true (p.Llm.Sampler.presence_penalty = 0.6)

(* ------------------------------------------------------------------ *)
(* Mutations *)

let corpus_programs =
  Array.to_list (Array.map Llm.Corpus.program Llm.Corpus.entries)

let qcheck_mutations_preserve_validity =
  QCheck.Test.make ~name:"every strategy preserves validity on the corpus"
    ~count:300
    QCheck.(pair small_int (int_bound (List.length corpus_programs - 1)))
    (fun (seed, idx) ->
      let rng = Util.Rng.of_int seed in
      let p = List.nth corpus_programs idx in
      Array.for_all
        (fun strategy ->
          let mutated, _ = Llm.Mutate.apply rng strategy p in
          Analysis.Validate.is_valid mutated)
        Llm.Mutate.all)

let qcheck_mutations_preserve_validity_varity =
  QCheck.Test.make ~name:"every strategy preserves validity on random programs"
    ~count:300 QCheck.small_int (fun seed ->
      let rng = Util.Rng.of_int seed in
      let p = Gen.Varity.generate rng in
      Array.for_all
        (fun strategy ->
          let mutated, _ = Llm.Mutate.apply rng strategy p in
          Analysis.Validate.is_valid mutated)
        Llm.Mutate.all)

let test_mutation_reports_change () =
  let rng = Util.Rng.of_int 42 in
  let p = Llm.Corpus.program Llm.Corpus.entries.(0) in
  let changed_count = ref 0 in
  for _ = 1 to 20 do
    Array.iter
      (fun strategy ->
        let mutated, changed = Llm.Mutate.apply rng strategy p in
        if changed then begin
          incr changed_count;
          check_bool "reported change is real" false (Lang.Ast.equal mutated p)
        end)
      Llm.Mutate.all
  done;
  check_bool "strategies usually apply" true (!changed_count > 50)

let test_swap_introduces_call_when_none () =
  let rng = Util.Rng.of_int 43 in
  let p = Cparse.Parse.program_exn
      "void compute(double x, double y) { double comp = 0.0; comp = x * y + x; }" in
  let mutated, changed = Llm.Mutate.apply rng Llm.Mutate.Swap_math_fn p in
  check_bool "applied" true changed;
  check_bool "call added" true (Lang.Ast.call_count mutated = 1)

let test_insert_intermediates_splits () =
  let rng = Util.Rng.of_int 44 in
  let p = Cparse.Parse.program_exn
      "void compute(double x, double y) { double comp = 0.0; comp = x * y + 1.0; }" in
  let mutated, changed = Llm.Mutate.apply rng Llm.Mutate.Insert_intermediates p in
  check_bool "applied" true changed;
  let f = Analysis.Features.of_program mutated in
  check_bool "temp introduced" true (f.Analysis.Features.temp_count = 1)

let test_reorder_symmetric_candidate_advances () =
  (* Regression: the first commutative candidate [x + x] is symmetric, so
     swapping its operands is a no-op. The rewriter must advance to the
     next pre-order candidate [x * y] instead of giving up for the slot —
     it used to return the program unchanged whenever the drawn k landed
     on a symmetric node. *)
  let p = Cparse.Parse.program_exn
      "void compute(double x, double y) { double comp = 0.0; comp = x + x; \
       comp = x * y; }" in
  for seed = 1 to 20 do
    let rng = Util.Rng.of_int seed in
    let mutated, changed = Llm.Mutate.apply rng Llm.Mutate.Reorder_or_nest p in
    check_bool "applied" true changed;
    check_bool "tree differs" false (Lang.Ast.equal mutated p)
  done

let test_add_control_flow_wraps () =
  let rng = Util.Rng.of_int 45 in
  let p = Cparse.Parse.program_exn
      "void compute(double x) { double comp = 0.0; comp = x; }" in
  let mutated, changed = Llm.Mutate.apply rng Llm.Mutate.Add_control_flow p in
  check_bool "applied" true changed;
  let f = Analysis.Features.of_program mutated in
  check_bool "loop or if added" true
    (f.Analysis.Features.loop_count + f.Analysis.Features.if_count = 1)

(* ------------------------------------------------------------------ *)
(* Client *)

let test_client_deterministic () =
  let c1 = Llm.Client.create ~seed:9 () in
  let c2 = Llm.Client.create ~seed:9 () in
  let prompt = Llm.Prompt.Grammar { precision = Lang.Ast.F64 } in
  for _ = 1 to 10 do
    Alcotest.(check string) "same responses"
      (Llm.Client.generate c1 prompt).Llm.Client.source
      (Llm.Client.generate c2 prompt).Llm.Client.source
  done

let test_client_mostly_valid () =
  let client = Llm.Client.create ~seed:10 () in
  let ok = ref 0 and n = 200 in
  for _ = 1 to n do
    let r = Llm.Client.generate client (Llm.Prompt.Grammar { precision = Lang.Ast.F64 }) in
    match Cparse.Parse.program r.Llm.Client.source with
    | Ok p when Analysis.Validate.is_valid p -> incr ok
    | _ -> ()
  done;
  check_bool "validity above 90%" true (!ok > 180)

let test_client_flaws_occur () =
  let client = Llm.Client.create ~seed:11 () in
  let bad = ref 0 and n = 400 in
  for _ = 1 to n do
    let r = Llm.Client.generate client (Llm.Prompt.Direct { precision = Lang.Ast.F64 }) in
    match Cparse.Parse.program r.Llm.Client.source with
    | Ok p when Analysis.Validate.is_valid p -> ()
    | _ -> incr bad
  done;
  check_bool "some invalid outputs" true (!bad > 0);
  check_bool "but rare" true (!bad < n / 5)

let test_client_latency_accounting () =
  let client = Llm.Client.create ~seed:12 () in
  let r = Llm.Client.generate client (Llm.Prompt.Grammar { precision = Lang.Ast.F64 }) in
  check_bool "latency positive" true (r.Llm.Client.latency > 0.0);
  check_bool "tokens counted" true
    (r.Llm.Client.prompt_tokens > 0 && r.Llm.Client.output_tokens > 0);
  check_int "calls counted" 1 (Llm.Client.calls client);
  check_bool "total accumulates" true
    (Llm.Client.total_latency client = r.Llm.Client.latency)

let test_client_mutate_relates_to_example () =
  let client = Llm.Client.create ~seed:13 () in
  let example = Llm.Corpus.program Llm.Corpus.entries.(0) in
  let r = Llm.Client.generate client
      (Llm.Prompt.Mutate { precision = Lang.Ast.F64; example }) in
  match Cparse.Parse.program r.Llm.Client.source with
  | Error m -> Alcotest.fail m
  | Ok p ->
    (* same parameter arity: mutations never touch the signature *)
    check_int "parameter list preserved"
      (List.length example.Lang.Ast.params)
      (List.length p.Lang.Ast.params)

let test_flaw_rates_ordered () =
  let d = Llm.Client.flaw_rate (Llm.Prompt.Direct { precision = Lang.Ast.F64 }) in
  let g = Llm.Client.flaw_rate (Llm.Prompt.Grammar { precision = Lang.Ast.F64 }) in
  check_bool "direct most error-prone" true (d > g)

let () =
  Alcotest.run "llm"
    [
      ( "corpus",
        [
          Alcotest.test_case "size" `Quick test_corpus_size;
          Alcotest.test_case "all parse+validate" `Quick test_corpus_all_parse_and_validate;
          Alcotest.test_case "unique names" `Quick test_corpus_names_unique;
          Alcotest.test_case "memoized" `Quick test_corpus_memoized;
          Alcotest.test_case "common subset" `Quick test_corpus_common_subset;
          Alcotest.test_case "by tag" `Quick test_corpus_by_tag;
          Alcotest.test_case "runs everywhere" `Quick test_corpus_runs_everywhere;
        ] );
      ( "prompts",
        [
          Alcotest.test_case "direct" `Quick test_prompt_render_direct;
          Alcotest.test_case "grammar" `Quick test_prompt_render_grammar;
          Alcotest.test_case "mutate" `Quick test_prompt_render_mutate;
          Alcotest.test_case "token count" `Quick test_token_count;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "penalties spread" `Quick test_sampler_penalties_spread_usage;
          Alcotest.test_case "usage recorded" `Quick test_sampler_records_usage;
          Alcotest.test_case "bad params" `Quick test_sampler_rejects_bad_params;
          Alcotest.test_case "paper params" `Quick test_paper_params;
        ] );
      ( "mutate",
        [
          QCheck_alcotest.to_alcotest qcheck_mutations_preserve_validity;
          QCheck_alcotest.to_alcotest qcheck_mutations_preserve_validity_varity;
          Alcotest.test_case "reports change" `Quick test_mutation_reports_change;
          Alcotest.test_case "swap introduces call" `Quick test_swap_introduces_call_when_none;
          Alcotest.test_case "insert splits" `Quick test_insert_intermediates_splits;
          Alcotest.test_case "control flow wraps" `Quick test_add_control_flow_wraps;
          Alcotest.test_case "symmetric candidate advances" `Quick
            test_reorder_symmetric_candidate_advances;
        ] );
      ( "client",
        [
          Alcotest.test_case "deterministic" `Quick test_client_deterministic;
          Alcotest.test_case "mostly valid" `Quick test_client_mostly_valid;
          Alcotest.test_case "flaws occur" `Quick test_client_flaws_occur;
          Alcotest.test_case "latency accounting" `Quick test_client_latency_accounting;
          Alcotest.test_case "mutate keeps signature" `Quick test_client_mutate_relates_to_example;
          Alcotest.test_case "flaw rates ordered" `Quick test_flaw_rates_ordered;
        ] );
    ]
