(* Tests for lib/reduce: delta-debugging reduction of archived cases.

   The acceptance bar: over a fixed-seed recorded archive, every case
   reduces to a strictly smaller program, and the reduced record — on
   its own, through the normal forensics replay path — reproduces the
   inconsistency bit-for-bit between the same configuration pair. *)

open Helpers

let fixed_archive f =
  with_tmpdir ~prefix:"llm4fp-reduce" @@ fun dir ->
  let recorder = Difftest.Recorder.create ~dir in
  ignore
    (Harness.Campaign.run ~budget:15 ~recorder ~seed:20250704
       Harness.Approach.Llm4fp);
  match Difftest.Recorder.load_dir dir with
  | Error msg -> Alcotest.fail msg
  | Ok [] -> Alcotest.fail "fixed-seed archive is empty"
  | Ok cases -> f dir cases

let test_reduce_every_case () =
  fixed_archive @@ fun _dir cases ->
  List.iter
    (fun case ->
      match Reduce.run case with
      | Error msg ->
        Alcotest.failf "reduction failed on %s: %s"
          (Difftest.Case.fingerprint case) msg
      | Ok r ->
        check_bool "strictly smaller program" true
          (r.Reduce.reduced_size < r.Reduce.original_size);
        let ratio = Reduce.shrink_ratio r in
        check_bool "ratio in (0, 1)" true (ratio > 0.0 && ratio < 1.0);
        check_bool "same configuration pair" true
          (r.Reduce.reduced.Difftest.Case.left.Difftest.Case.config
           = case.Difftest.Case.left.Difftest.Case.config
          && r.Reduce.reduced.Difftest.Case.right.Difftest.Case.config
             = case.Difftest.Case.right.Difftest.Case.config);
        check_bool "provenance preserved" true
          (r.Reduce.reduced.Difftest.Case.seed = case.Difftest.Case.seed
          && r.Reduce.reduced.Difftest.Case.slot = case.Difftest.Case.slot);
        check_bool "still a divergence"
          true
          (r.Reduce.reduced.Difftest.Case.left.Difftest.Case.hex
          <> r.Reduce.reduced.Difftest.Case.right.Difftest.Case.hex);
        (* The reduced record must stand alone: the forensics replay
           path re-parses, recompiles and re-runs it, and must land on
           the archived bits exactly. *)
        (match Forensics.Explain.replay r.Reduce.reduced with
        | Error msg -> Alcotest.failf "reduced case does not replay: %s" msg
        | Ok outcome ->
          check_bool "reduced case reproduces bit-exactly" true
            outcome.Forensics.Explain.reproduced);
        check_bool "report renders" true
          (String.length (Reduce.render r) > 0))
    cases

let test_reduce_rejects_stale_archive () =
  fixed_archive @@ fun _dir cases ->
  let case = List.hd cases in
  (* Corrupt the archived bits: claim both sides agree. The reducer must
     refuse to "reduce" a record that does not reproduce as archived. *)
  let stale =
    {
      case with
      Difftest.Case.right =
        {
          case.Difftest.Case.right with
          Difftest.Case.hex = case.Difftest.Case.left.Difftest.Case.hex;
        };
    }
  in
  match Reduce.run stale with
  | Ok _ -> Alcotest.fail "reduced a non-reproducing archive record"
  | Error msg ->
    check_bool "error names the mismatch" true
      (Util.Text.contains_sub msg "mismatch")

let test_minimized_companion () =
  fixed_archive @@ fun dir cases ->
  let case = List.hd cases in
  let fingerprint = Difftest.Case.fingerprint case in
  match Reduce.run case with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    let path =
      Difftest.Recorder.write_minimized ~dir ~fingerprint r.Reduce.reduced
    in
    check_string "companion path" (Difftest.Recorder.minimized_path ~dir ~fingerprint) path;
    check_bool "keyed by the original fingerprint" true
      (Filename.basename path = fingerprint ^ ".min.jsonl");
    (* The companion is replayable through the standard loader... *)
    (match Forensics.Explain.load path with
    | Error msg -> Alcotest.fail ("companion does not load: " ^ msg)
    | Ok loaded ->
      check_bool "companion holds the reduced case" true
        (loaded = r.Reduce.reduced));
    (* ...but is invisible to the archive: dedup seeding and load_dir
       must only ever see original records. *)
    match Difftest.Recorder.load_dir dir with
    | Error msg -> Alcotest.fail msg
    | Ok loaded ->
      check_int "load_dir ignores .min.jsonl companions" (List.length cases)
        (List.length loaded);
      check_bool "reduced case not mixed into the archive" true
        (List.for_all (fun c -> c <> r.Reduce.reduced) loaded)

let test_explain_reduce_wiring () =
  fixed_archive @@ fun _dir cases ->
  let case = List.hd cases in
  (* Default replay does not reduce. *)
  (match Forensics.Explain.replay case with
  | Error msg -> Alcotest.fail msg
  | Ok o ->
    check_bool "no reduction by default" true
      (o.Forensics.Explain.reduction = None));
  match Forensics.Explain.replay ~reduce:true case with
  | Error msg -> Alcotest.fail msg
  | Ok o ->
    (match o.Forensics.Explain.reduction with
    | Some (Ok r) ->
      check_bool "reduction shrank the program" true
        (r.Reduce.reduced_size < r.Reduce.original_size);
      let report = Forensics.Explain.render o in
      check_bool "report shows the reduction" true
        (Util.Text.contains_sub report "reduction")
    | Some (Error msg) -> Alcotest.fail ("reduction failed: " ^ msg)
    | None -> Alcotest.fail "~reduce:true produced no reduction")

let () =
  Alcotest.run "reduce"
    [
      ( "reduce",
        [
          Alcotest.test_case "every archived case reduces and replays" `Slow
            test_reduce_every_case;
          Alcotest.test_case "stale archives are rejected" `Slow
            test_reduce_rejects_stale_archive;
          Alcotest.test_case "minimized companion files" `Slow
            test_minimized_companion;
          Alcotest.test_case "explain --reduce wiring" `Slow
            test_explain_reduce_wiring;
        ] );
    ]
