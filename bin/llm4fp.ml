(* llm4fp — command-line front end for the LLM4FP reproduction.

   Subcommands:
     generate   print candidate programs from any approach's generator
     matrix     compile & run one program under all 18 configurations
     campaign   run a full campaign for one approach and print statistics
     tables     run all four campaigns and print every paper table/figure
     profile    run a small campaign with span timing and print the profile
     corpus     list or show the mock LLM's kernel corpus
     explain    replay an archived inconsistency case and isolate its cause
     fuzz       run seeded property suites over the framework invariants
     dashboard  render the analytics dashboard from a case archive
     watch      tail a campaign trace and render the live flight deck
     trace      query an archived JSONL trace (filter / stats / CSV) *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 20250704 & info [ "s"; "seed" ] ~docv:"SEED"
         ~doc:"Base random seed (campaigns are deterministic in it).")

let budget_arg =
  Arg.(value & opt int 1000 & info [ "b"; "budget" ] ~docv:"N"
         ~doc:"Number of generated programs per approach (paper: 1000).")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a JSONL event trace of the run to $(docv) (one \
                 event object per line; byte-reproducible for a fixed \
                 seed).")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print the metrics-registry snapshot after the run.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the parallel engine (default 1 = \
                 sequential). Results are identical at any job count; \
                 only wall-clock changes.")

let engine_arg =
  let engine_conv =
    Arg.conv
      ( (fun s ->
          match Compiler.Driver.engine_of_string s with
          | Some e -> Ok e
          | None ->
            Error (`Msg (Printf.sprintf "unknown engine %S (tree | vm)" s))),
        fun fmt e ->
          Format.pp_print_string fmt (Compiler.Driver.engine_name e) )
  in
  Arg.(value & opt (some engine_conv) None
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: $(b,vm) (the flattened run-many VM, \
                 the default) or $(b,tree) (the reference tree-walking \
                 interpreter). Results are bit-identical on either; the \
                 toggle exists for A/B measurement. Also read from \
                 \\$LLM4FP_ENGINE; the flag wins.")

(* Env first (like Exec.Faults.of_env), then the flag overrides. *)
let apply_engine choice =
  (try Compiler.Driver.set_engine_of_env ()
   with Invalid_argument msg ->
     prerr_endline msg;
     exit 1);
  Option.iter Compiler.Driver.set_engine choice

(* Bracket [f] with a JSONL trace sink on [path], when given. *)
let with_trace path f =
  match path with
  | None -> f ()
  | Some path ->
    (* Binary mode: trace bytes are identical across platforms (no
       newline translation), the same fix the recorder got. *)
    let oc =
      try open_out_bin path
      with Sys_error msg ->
        prerr_endline ("cannot open trace file: " ^ msg);
        exit 1
    in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        (* Ordered: the file carries the jobs=1 event sequence at any
           job count (events are sorted by their (slot, lane, seq)
           stamps before they reach the channel). *)
        Obs.Trace.with_sink (Obs.Sink.ordered (Obs.Sink.jsonl oc)) f)

let print_metrics_if requested =
  if requested then begin
    print_newline ();
    print_string (Obs.Metrics.render_table ())
  end

(* Latency percentiles for the dashboard, from the metrics registry.
   Every registered histogram observes modelled (simulated) quantities,
   so these are deterministic in the seed — they may appear in the
   byte-reproducible HTML report. *)
let latency_percentiles () =
  List.filter_map
    (fun (name, v) ->
      match v with
      | Obs.Metrics.Histogram { bounds; counts; count; _ } when count > 0 ->
        let p q = Obs.Metrics.percentile_of ~bounds ~counts q in
        Some
          {
            Report.Analytics.metric = name;
            count;
            p50 = p 0.50;
            p95 = p 0.95;
            p99 = p 0.99;
          }
      | _ -> None)
    (Obs.Metrics.snapshot ())

(* Reports are durable artifacts too: write them atomically so an
   interrupted run never leaves a half-rendered file at the target. *)
let write_file path content =
  try Util.Durable.write_string ~path content with
  | Sys_error msg ->
    prerr_endline ("cannot open output file: " ^ msg);
    exit 1
  | Unix.Unix_error (e, _, _) ->
    prerr_endline ("cannot write output file: " ^ Unix.error_message e);
    exit 1

let approach_arg =
  let parse s =
    match Harness.Approach.of_name s with
    | Some a -> Ok a
    | None ->
      Error (`Msg (Printf.sprintf "unknown approach %S (try varity, \
                                   direct-prompt, grammar-guided, llm4fp)" s))
  in
  let print fmt a = Format.pp_print_string fmt (Harness.Approach.name a) in
  Arg.conv (parse, print)

(* ------------------------------------------------------------------ *)

let cmd_generate =
  let count =
    Arg.(value & opt int 1 & info [ "n" ] ~docv:"COUNT" ~doc:"How many programs.")
  in
  let approach =
    Arg.(value & opt approach_arg Harness.Approach.Llm4fp
         & info [ "a"; "approach" ] ~docv:"APPROACH"
             ~doc:"varity | direct-prompt | grammar-guided | llm4fp")
  in
  let run seed count approach =
    let rng = Util.Rng.of_int seed in
    let client = Llm.Client.create ~seed () in
    for k = 1 to count do
      let source =
        match approach with
        | Harness.Approach.Varity -> Lang.Pp.to_c (Gen.Varity.generate rng)
        | Harness.Approach.Direct_prompt ->
          (Llm.Client.generate client (Llm.Prompt.Direct { precision = Lang.Ast.F64 }))
            .Llm.Client.source
        | Harness.Approach.Grammar_guided | Harness.Approach.Llm4fp ->
          (Llm.Client.generate client (Llm.Prompt.Grammar { precision = Lang.Ast.F64 }))
            .Llm.Client.source
      in
      if count > 1 then Printf.printf "/* --- program %d --- */\n" k;
      print_string source
    done
  in
  Cmd.v (Cmd.info "generate" ~doc:"Print generated candidate programs")
    Term.(const run $ seed_arg $ count $ approach)

let cmd_matrix =
  let file =
    Arg.(value & opt (some file) None
         & info [ "f"; "file" ] ~docv:"FILE"
             ~doc:"C source of a compute function (default: a fresh \
                   LLM4FP-style program).")
  in
  let run seed file engine =
    apply_engine engine;
    let source =
      match file with
      | Some path ->
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      | None ->
        let client = Llm.Client.create ~seed () in
        (Llm.Client.generate client (Llm.Prompt.Grammar { precision = Lang.Ast.F64 }))
          .Llm.Client.source
    in
    match Cparse.Parse.program source with
    | Error msg -> prerr_endline ("parse error: " ^ msg); exit 1
    | Ok program ->
      (match Analysis.Validate.check program with
       | Error issues ->
         prerr_endline "invalid program:";
         List.iter
           (fun i -> prerr_endline ("  " ^ Analysis.Validate.issue_to_string i))
           issues;
         exit 1
       | Ok () -> ());
      let rng = Util.Rng.of_int (seed lxor 0xF00D) in
      let inputs =
        Gen.Generate.gen_inputs rng Llm.Client.generation_config program
      in
      print_string (Lang.Pp.to_c program);
      Format.printf "@.inputs: %a@.@." Irsim.Inputs.pp inputs;
      let result = Difftest.Run.test program inputs in
      let rows =
        List.map
          (fun (o : Difftest.Run.output) ->
            [ Compiler.Config.name o.Difftest.Run.config;
              o.Difftest.Run.hex;
              Printf.sprintf "%.17g" o.Difftest.Run.value ])
          result.Difftest.Run.outputs
      in
      print_string
        (Report.Table.render ~header:[ "configuration"; "hex"; "value" ]
           ~align:[ Report.Table.Left; Report.Table.Left; Report.Table.Right ]
           rows);
      Printf.printf "\ncross-compiler inconsistencies: %d of %d comparisons\n"
        (Difftest.Run.cross_inconsistencies result)
        (List.length result.Difftest.Run.cross)
  in
  Cmd.v (Cmd.info "matrix" ~doc:"Run one program under every configuration")
    Term.(const run $ seed_arg $ file $ engine_arg)

let cmd_campaign =
  let approach =
    Arg.(required & pos 0 (some approach_arg) None
         & info [] ~docv:"APPROACH" ~doc:"Which approach to run.")
  in
  let fp32 =
    Arg.(value & flag
         & info [ "fp32" ] ~doc:"Generate and test single-precision programs.")
  in
  let record =
    Arg.(value & opt (some string) None
         & info [ "record" ] ~docv:"DIR"
             ~doc:"Flight recorder: archive every first-seen inconsistency \
                   as a replayable case file $(docv)/<fingerprint>.jsonl \
                   (see the $(b,explain) subcommand). Recording changes no \
                   result.")
  in
  let html =
    Arg.(value & opt (some string) None
         & info [ "html" ] ~docv:"FILE"
             ~doc:"Write the campaign analytics dashboard (self-contained \
                   HTML) to $(docv). Requires $(b,--record).")
  in
  let checkpoint_dir =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"DIR"
             ~doc:"Durably snapshot the complete campaign state to \
                   $(docv)/checkpoint.jsonl every $(b,--checkpoint-every) \
                   slots (atomic temp+rename, fsync'd). Checkpointing \
                   changes no result.")
  in
  let checkpoint_every =
    Arg.(value & opt int 25
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Slots between checkpoints (with $(b,--checkpoint); \
                   default 25).")
  in
  let resume =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"DIR"
             ~doc:"Resume an interrupted campaign from \
                   $(docv)/checkpoint.jsonl. The snapshot supplies seed, \
                   budget, precision and (unless $(b,--record) overrides) \
                   the case-archive directory; the positional APPROACH \
                   must match. Checkpointing continues into $(docv) unless \
                   $(b,--checkpoint) redirects it. With $(b,--trace), the \
                   file is truncated to the snapshot's durable offset \
                   first, so the finished trace is byte-identical to an \
                   uninterrupted run's.")
  in
  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"PLAN"
             ~doc:"Deterministic fault-injection plan for recovery \
                   testing, e.g. $(b,llm\\@3:fail,checkpoint\\@2:crash). \
                   Each rule is STAGE\\@HIT:ACTION with STAGE one of llm, \
                   frontend, backend, exec, archive, checkpoint and \
                   ACTION one of crash, fail (transient, retried), \
                   delay=SECONDS. Also read from \\$LLM4FP_FAULTS.")
  in
  let run seed budget approach fp32 jobs trace metrics record html
      checkpoint_dir checkpoint_every resume faults engine =
    apply_engine engine;
    if html <> None && record = None then begin
      prerr_endline "--html needs --record DIR (the dashboard folds the case archive)";
      exit 1
    end;
    if checkpoint_every <= 0 then begin
      prerr_endline "--checkpoint-every must be positive";
      exit 1
    end;
    (try Exec.Faults.of_env ()
     with Invalid_argument msg ->
       prerr_endline msg;
       exit 1);
    (match faults with
    | None -> ()
    | Some spec -> begin
      match Exec.Faults.parse spec with
      | Ok plan -> Exec.Faults.arm plan
      | Error msg ->
        prerr_endline ("--faults: " ^ msg);
        exit 1
    end);
    let snapshot =
      match resume with
      | None -> None
      | Some dir -> begin
        match Checkpoint.load ~dir with
        | Ok snap -> Some (dir, snap)
        | Error msg ->
          prerr_endline ("--resume: " ^ msg);
          exit 1
      end
    in
    (* A checkpoint resumes the campaign it came from: its identity
       fields win over the CLI defaults, and a mismatched approach is an
       error here (with a friendlier message than Campaign.run's). *)
    (match snapshot with
    | Some (_, snap)
      when snap.Checkpoint.approach <> Harness.Approach.name approach ->
      Printf.eprintf "--resume: checkpoint is for approach %s, not %s\n"
        snap.Checkpoint.approach
        (Harness.Approach.name approach);
      exit 1
    | _ -> ());
    let seed, budget, precision =
      match snapshot with
      | None -> (seed, budget, if fp32 then Lang.Ast.F32 else Lang.Ast.F64)
      | Some (_, snap) ->
        ( snap.Checkpoint.seed,
          snap.Checkpoint.budget,
          if snap.Checkpoint.precision = "fp32" then Lang.Ast.F32
          else Lang.Ast.F64 )
    in
    let record =
      match (record, snapshot) with
      | None, Some (_, snap) ->
        Option.map
          (fun rs -> rs.Checkpoint.rec_dir)
          snap.Checkpoint.recorder
      | record, _ -> record
    in
    let recorder = Option.map (fun dir -> Difftest.Recorder.create ~dir) record in
    let checkpoint =
      match (checkpoint_dir, snapshot) with
      | Some dir, _ -> Some (dir, checkpoint_every)
      | None, Some (dir, snap) -> Some (dir, snap.Checkpoint.interval)
      | None, None -> None
    in
    let with_campaign_trace f =
      match (trace, snapshot) with
      | Some path, Some (_, snap) ->
        (* Truncate back to the checkpoint's durable offset before the
           sink attaches: events the crashed run flushed beyond the
           boundary are discarded, then re-emitted identically. *)
        let oc =
          try Checkpoint.reopen_trace ~path snap with
          | Unix.Unix_error (e, _, _) ->
            prerr_endline
              ("cannot reopen trace file: " ^ Unix.error_message e);
            exit 1
          | Sys_error msg ->
            prerr_endline ("cannot reopen trace file: " ^ msg);
            exit 1
        in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Obs.Trace.with_sink (Obs.Sink.ordered (Obs.Sink.jsonl oc)) f)
      | _ -> with_trace trace f
    in
    let o =
      with_campaign_trace (fun () ->
          Harness.Campaign.run ~budget ~precision ~jobs ?recorder ?checkpoint
            ?resume:(Option.map snd snapshot) ~seed approach)
    in
    let stats = o.Harness.Campaign.stats in
    Printf.printf "%s: budget %d, seed %d\n" (Harness.Approach.name approach)
      budget seed;
    Printf.printf "  inconsistency rate : %s\n"
      (Report.Table.pct (Difftest.Stats.inconsistency_rate stats));
    Printf.printf "  inconsistencies    : %s of %s comparisons\n"
      (Report.Table.commas (Difftest.Stats.total_inconsistencies stats))
      (Report.Table.commas (Difftest.Stats.total_comparisons stats));
    Printf.printf "  valid programs     : %d (%d generation failures)\n"
      (List.length o.Harness.Campaign.programs)
      o.Harness.Campaign.generation_failures;
    Printf.printf "  feedback set       : %d\n" o.Harness.Campaign.successful;
    Printf.printf "  simulated time     : %s (llm %s)\n"
      (Util.Sim_clock.hms o.Harness.Campaign.sim_seconds)
      (Util.Sim_clock.hms o.Harness.Campaign.llm_seconds);
    Printf.printf "  real compute       : %.2fs\n" o.Harness.Campaign.real_seconds;
    (match recorder with
    | None -> ()
    | Some r ->
      Printf.printf "  case archive       : %d new case(s) in %s (%d duplicate hits)\n"
        (Difftest.Recorder.count r) (Difftest.Recorder.dir r)
        (Difftest.Recorder.duplicates r));
    (match (html, record) with
    | Some out, Some dir -> begin
      match Difftest.Recorder.load_dir dir with
      | Error msg ->
        prerr_endline ("cannot load case archive: " ^ msg);
        exit 1
      | Ok cases ->
        let analytics =
          Report.Analytics.build (List.map Difftest.Case.to_analytics cases)
        in
        let title =
          Printf.sprintf "LLM4FP campaign forensics — %s, budget %d, seed %d"
            (Harness.Approach.name approach) budget seed
        in
        write_file out
          (Report.Analytics.render_html ~latencies:(latency_percentiles ())
             ~title analytics);
        Printf.printf "  dashboard          : %s\n" out
    end
    | _ -> ());
    print_metrics_if metrics
  in
  Cmd.v (Cmd.info "campaign" ~doc:"Run one approach's full campaign")
    Term.(const run $ seed_arg $ budget_arg $ approach $ fp32 $ jobs_arg
          $ trace_arg $ metrics_arg $ record $ html $ checkpoint_dir
          $ checkpoint_every $ resume $ faults $ engine_arg)

let cmd_tables =
  let only =
    Arg.(value & opt (some string) None
         & info [ "t"; "table" ] ~docv:"NAME"
             ~doc:"Print only this section (summary, table1, table2, table3, \
                   figure3, table4, table5, table6).")
  in
  let max_pairs =
    Arg.(value & opt int 50_000 & info [ "max-pairs" ] ~docv:"N"
           ~doc:"CodeBLEU pair-sample bound per approach.")
  in
  let csv =
    Arg.(value & flag
         & info [ "csv" ]
             ~doc:"Also write each table as CSV (requires $(b,--out)).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Directory for the CSV files (one <section>.csv per \
                   table).")
  in
  let run seed budget only max_pairs jobs trace metrics csv out engine =
    apply_engine engine;
    if csv && out = None then begin
      prerr_endline "--csv needs --out DIR";
      exit 1
    end;
    let sections =
      with_trace trace (fun () ->
          let suite = Harness.Experiments.run_suite ~budget ~jobs ~seed () in
          Harness.Experiments.sections ~max_pairs ~jobs suite)
    in
    (match only with
    | None ->
      List.iter
        (fun (s : Harness.Experiments.section) ->
          Printf.printf "== %s ==\n%s\n" s.Harness.Experiments.name
            s.Harness.Experiments.text)
        sections
    | Some name -> begin
      match
        List.find_opt
          (fun (s : Harness.Experiments.section) ->
            s.Harness.Experiments.name = name)
          sections
      with
      | Some s -> print_string s.Harness.Experiments.text
      | None ->
        prerr_endline ("unknown section " ^ name);
        exit 1
    end);
    (match (csv, out) with
    | true, Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      List.iter
        (fun (s : Harness.Experiments.section) ->
          match s.Harness.Experiments.csv with
          | None -> ()
          | Some data ->
            let path =
              Filename.concat dir (s.Harness.Experiments.name ^ ".csv")
            in
            write_file path data;
            Printf.eprintf "wrote %s\n" path)
        sections
    | _ -> ());
    print_metrics_if metrics
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:"Run all four campaigns and print every paper table and figure")
    Term.(const run $ seed_arg $ budget_arg $ only $ max_pairs $ jobs_arg
          $ trace_arg $ metrics_arg $ csv $ out $ engine_arg)

let cmd_corpus =
  let kernel_name =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"NAME" ~doc:"Kernel to print (omit to list).")
  in
  let run name =
    match name with
    | None ->
      Array.iter
        (fun (e : Llm.Corpus.entry) ->
          Printf.printf "%-28s %s\n" e.Llm.Corpus.name
            (if e.Llm.Corpus.common then "common" else ""))
        Llm.Corpus.entries
    | Some name -> begin
      match
        Array.find_opt
          (fun (e : Llm.Corpus.entry) -> e.Llm.Corpus.name = name)
          Llm.Corpus.entries
      with
      | Some e -> print_string (String.trim e.Llm.Corpus.source ^ "\n")
      | None ->
        prerr_endline ("no such kernel: " ^ name);
        exit 1
    end
  in
  Cmd.v (Cmd.info "corpus" ~doc:"List or print the mock LLM's kernel corpus")
    Term.(const run $ kernel_name)

let cmd_ablation =
  let run seed budget = print_string (Harness.Ablation.table ~budget ~seed ()) in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Replay one LLM4FP corpus under ablated compiler models")
    Term.(const run $ seed_arg
          $ Arg.(value & opt int 300
                 & info [ "b"; "budget" ] ~docv:"N" ~doc:"Corpus size."))

let cmd_fp32 =
  let run seed budget =
    print_string (Harness.Experiments.precision_comparison ~budget ~seed ())
  in
  Cmd.v
    (Cmd.info "precision"
       ~doc:"Compare FP64 and FP32 campaigns (Varity and LLM4FP)")
    Term.(const run $ seed_arg
          $ Arg.(value & opt int 300
                 & info [ "b"; "budget" ] ~docv:"N" ~doc:"Budget per campaign."))

let cmd_profile =
  let approach =
    Arg.(value & opt approach_arg Harness.Approach.Llm4fp
         & info [ "a"; "approach" ] ~docv:"APPROACH"
             ~doc:"varity | direct-prompt | grammar-guided | llm4fp")
  in
  let budget =
    Arg.(value & opt int 100
         & info [ "b"; "budget" ] ~docv:"N"
             ~doc:"Campaign size for the profiling run.")
  in
  let flame =
    Arg.(value & opt (some string) None
         & info [ "flame" ] ~docv:"FILE"
             ~doc:"Also export the span tree as Chrome trace-event JSON \
                   to $(docv) (loadable in chrome://tracing or Perfetto).")
  in
  let run seed budget approach jobs trace metrics flame engine =
    apply_engine engine;
    Obs.Span.set_enabled true;
    let o =
      with_trace trace (fun () ->
          Harness.Campaign.run ~budget ~jobs ~seed approach)
    in
    Printf.printf
      "%s: budget %d, seed %d — %s inconsistencies, real compute %.2fs\n\n"
      (Harness.Approach.name approach)
      budget seed
      (Report.Table.commas
         (Difftest.Stats.total_inconsistencies o.Harness.Campaign.stats))
      o.Harness.Campaign.real_seconds;
    print_string (Obs.Span.render ());
    print_newline ();
    print_string (Obs.Span.render_tree ());
    print_newline ();
    print_string (Obs.Metrics.render_percentiles ());
    (match flame with
    | None -> ()
    | Some out ->
      write_file out (Obs.Json.to_string (Obs.Span.flame ()) ^ "\n");
      Printf.eprintf "wrote %s\n" out);
    print_metrics_if metrics
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run a small campaign with span timing enabled and print the \
             per-stage hot-path profile (flat and as a call tree), \
             optionally exporting a flamegraph ($(b,--flame))")
    Term.(const run $ seed_arg $ budget $ approach $ jobs_arg $ trace_arg
          $ metrics_arg $ flame $ engine_arg)

let cmd_explain =
  let case_ref =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"CASE"
             ~doc:"An archive file path, or a bare fingerprint resolved \
                   against $(b,--archive).")
  in
  let archive =
    Arg.(value & opt (some string) None
         & info [ "archive" ] ~docv:"DIR"
             ~doc:"The case-archive directory a bare fingerprint is \
                   looked up in (as written by $(b,campaign --record)).")
  in
  let reduce =
    Arg.(value & flag
         & info [ "reduce" ]
             ~doc:"Also minimize the case with the delta-debugging reducer \
                   and write the reduced replayable record next to the \
                   archived one ($(i,FP).min.jsonl).")
  in
  let run case_ref archive reduce metrics =
    (match archive with
    | Some dir when not (Sys.file_exists dir && Sys.is_directory dir) ->
      Printf.eprintf
        "llm4fp explain: no case archive at %s (create one with \
         'campaign --record %s')\n"
        dir dir;
      exit 2
    | Some dir
      when Array.for_all
             (fun f -> not (Filename.check_suffix f ".jsonl"))
             (Sys.readdir dir) ->
      Printf.eprintf
        "llm4fp explain: case archive %s is empty (no *.jsonl case files)\n"
        dir;
      exit 2
    | _ -> ());
    Obs.Span.set_enabled true;
    match Forensics.Explain.load ?dir:archive case_ref with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok case -> begin
      match Forensics.Explain.replay ~reduce case with
      | Error msg ->
        prerr_endline ("replay failed: " ^ msg);
        exit 1
      | Ok outcome ->
        print_string (Forensics.Explain.render outcome);
        (match outcome.Forensics.Explain.reduction with
        | Some (Ok r) ->
          (* the companion lands where the case lives: the directory of
             the given path, or the --archive directory *)
          let dir =
            if Sys.file_exists case_ref && not (Sys.is_directory case_ref)
            then Filename.dirname case_ref
            else Option.value archive ~default:"."
          in
          let path =
            Difftest.Recorder.write_minimized ~dir
              ~fingerprint:(Difftest.Case.fingerprint case)
              r.Reduce.reduced
          in
          Printf.eprintf "wrote %s\n" path
        | Some (Error _) | None -> ());
        print_newline ();
        print_string (Obs.Span.render ());
        print_metrics_if metrics;
        if not outcome.Forensics.Explain.reproduced then exit 1
    end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Replay an archived inconsistency case bit-for-bit, isolate \
             its root cause (minimal strict-statement set or runtime \
             divergence), and optionally emit a minimized replayable case \
             ($(b,--reduce))")
    Term.(const run $ case_ref $ archive $ reduce $ metrics_arg)

let cmd_fuzz =
  let iters =
    Arg.(value & opt (some int) None
         & info [ "n"; "iters" ] ~docv:"N"
             ~doc:"Cases per property (default: $(b,LLM4FP_PROP_ITERS) when \
                   set, else 60).")
  in
  let suite =
    Arg.(value & opt (some string) None
         & info [ "suite" ] ~docv:"NAME"
             ~doc:"Run only this property suite (see $(b,--list)).")
  in
  let replay =
    Arg.(value & opt (some int64) None
         & info [ "replay" ] ~docv:"SEED"
             ~doc:"Re-check the single case generated from $(docv) — the \
                   seed a failed property printed. Requires $(b,--suite).")
  in
  let list_only =
    Arg.(value & flag
         & info [ "list" ] ~doc:"List the property suites and exit.")
  in
  let run seed iters suite replay list_only metrics =
    if list_only then
      List.iter
        (fun s -> Printf.printf "%-22s %s\n" s.Prop.Suites.name s.Prop.Suites.doc)
        Prop.Suites.all
    else begin
      let report r =
        match r.Prop.Suites.failure with
        | None ->
          Printf.printf "PASS  %-22s (%d cases)\n" r.Prop.Suites.suite
            r.Prop.Suites.iterations;
          true
        | Some msg ->
          Printf.printf "FAIL  %-22s\n%s\n" r.Prop.Suites.suite msg;
          false
      in
      let ok =
        match replay with
        | Some case_seed -> begin
          match suite with
          | None ->
            prerr_endline "--replay requires --suite";
            exit 2
          | Some name -> begin
            match Prop.Suites.find name with
            | None ->
              Printf.eprintf "unknown suite %s (try --list)\n" name;
              exit 2
            | Some s -> report (s.Prop.Suites.replay case_seed)
          end
        end
        | None ->
          let suites =
            match suite with
            | None -> Prop.Suites.all
            | Some name -> begin
              match Prop.Suites.find name with
              | Some s -> [ s ]
              | None ->
                Printf.eprintf "unknown suite %s (try --list)\n" name;
                exit 2
            end
          in
          List.fold_left
            (fun ok s ->
              let r =
                s.Prop.Suites.run ?count:iters ~seed:(Int64.of_int seed) ()
              in
              report r && ok)
            true suites
      in
      print_metrics_if metrics;
      if not ok then exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Run the seeded property suites over the framework's own \
             invariants (generator validity, pass semantics preservation, \
             codec fixpoints, EFT identities). A failed property prints \
             the seed that deterministically replays its shrunk \
             counterexample.")
    Term.(const run $ seed_arg $ iters $ suite $ replay $ list_only
          $ metrics_arg)

let cmd_dashboard =
  let archive =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR" ~doc:"The case-archive directory to analyze.")
  in
  let html =
    Arg.(value & opt (some string) None
         & info [ "html" ] ~docv:"FILE"
             ~doc:"Also write the dashboard as self-contained HTML.")
  in
  let title =
    Arg.(value & opt string "LLM4FP campaign forensics"
         & info [ "title" ] ~docv:"TITLE" ~doc:"Report title.")
  in
  let run archive html title =
    if not (Sys.file_exists archive && Sys.is_directory archive) then begin
      Printf.eprintf
        "llm4fp dashboard: no case archive at %s (create one with \
         'campaign --record %s')\n"
        archive archive;
      exit 2
    end;
    match Difftest.Recorder.load_dir archive with
    | Error msg ->
      prerr_endline ("cannot load case archive: " ^ msg);
      exit 1
    | Ok [] ->
      Printf.eprintf
        "llm4fp dashboard: case archive %s is empty (no *.jsonl case \
         files — the recorded campaign found no inconsistencies?)\n"
        archive;
      exit 2
    | Ok cases ->
      let analytics =
        Report.Analytics.build (List.map Difftest.Case.to_analytics cases)
      in
      print_string (Report.Analytics.render_tty ~title analytics);
      (match html with
      | None -> ()
      | Some out ->
        write_file out (Report.Analytics.render_html ~title analytics);
        Printf.eprintf "wrote %s\n" out)
  in
  Cmd.v
    (Cmd.info "dashboard"
       ~doc:"Fold a case archive into per-pair / per-level / per-class \
             breakdown tables (TTY summary and optional HTML report)")
    Term.(const run $ archive $ html $ title)

let cmd_watch =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"TRACE"
             ~doc:"The JSONL trace file a campaign is writing \
                   ($(b,campaign --trace)); it need not exist yet.")
  in
  let replay =
    Arg.(value & flag
         & info [ "replay" ]
             ~doc:"Fold the completed trace in one pass and print a single \
                   final frame. Deterministic: a fixed-seed trace replays \
                   to a byte-identical frame.")
  in
  let interval =
    Arg.(value & opt float 0.5
         & info [ "interval" ] ~docv:"SECS"
             ~doc:"Polling interval in live mode (default 0.5).")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECS"
             ~doc:"Give up if the campaign has not finished after $(docv) \
                   of watching (exit 3). Default: watch until it does.")
  in
  let run file replay interval timeout =
    if replay then begin
      match Obs.Follow.read_all ~path:file with
      | Error msg ->
        prerr_endline ("llm4fp watch: " ^ msg);
        exit 1
      | Ok events ->
        print_string (Report.Flightdeck.render (Obs.Deck.of_events events))
    end
    else begin
      if interval <= 0.0 then begin
        prerr_endline "--interval must be positive";
        exit 1
      end;
      let follower = Obs.Follow.create ~path:file in
      let view = ref Report.Flightdeck.empty in
      let t0 = Unix.gettimeofday () in
      (* On a TTY each frame repaints in place; piped output gets one
         frame per batch, newline-separated (still parseable). *)
      let clear =
        if Unix.isatty Unix.stdout then "\027[H\027[2J" else ""
      in
      let rec loop () =
        match Obs.Follow.poll follower with
        | Error msg ->
          prerr_endline ("llm4fp watch: " ^ msg);
          exit 1
        | Ok batch ->
          if batch.Obs.Follow.rotated then view := Report.Flightdeck.empty;
          if batch.Obs.Follow.events <> [] then begin
            view :=
              List.fold_left Obs.Deck.apply !view batch.Obs.Follow.events;
            print_string (clear ^ Report.Flightdeck.render !view);
            flush stdout
          end;
          if not (!view).Report.Flightdeck.finished then begin
            (match timeout with
            | Some limit when Unix.gettimeofday () -. t0 > limit ->
              Printf.eprintf
                "llm4fp watch: campaign not finished after %gs\n" limit;
              exit 3
            | _ -> ());
            Unix.sleepf interval;
            loop ()
          end
      in
      loop ()
    end
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Tail a campaign's JSONL trace and render the live flight \
             deck: per-phase throughput, outcome and strategy-arm counts, \
             inconsistency hits by pair and level, latency sparkline and \
             budget ETA — all on the deterministic simulated clock. \
             Watching is purely observational: the campaign's results, \
             trace and archives are byte-identical with or without a \
             watcher attached.")
    Term.(const run $ file $ replay $ interval $ timeout)

let cmd_trace_query =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"An archived JSONL trace ($(b,campaign --trace)).")
  in
  let kind =
    Arg.(value & opt (some string) None
         & info [ "kind" ] ~docv:"KIND"
             ~doc:"Only events of this kind (snake_case tag, e.g. \
                   $(b,inconsistency_found), $(b,slot_finished)).")
  in
  let slot =
    Arg.(value & opt (some int) None
         & info [ "slot" ] ~docv:"N"
             ~doc:"Only events carrying campaign slot $(docv).")
  in
  let config =
    Arg.(value & opt (some string) None
         & info [ "config" ] ~docv:"NAME"
             ~doc:"Only compile/execute events for this compiler \
                   configuration.")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print per-kind counts for the selection instead of the \
                   event rows.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")
  in
  let run file kind slot config stats csv =
    match Obs.Follow.read_all ~path:file with
    | Error msg ->
      prerr_endline ("llm4fp trace: " ^ msg);
      exit 1
    | Ok events ->
      let matches ev =
        (match kind with None -> true | Some k -> Obs.Event.name ev = k)
        && (match slot with
           | None -> true
           | Some s -> Obs.Event.slot ev = Some s)
        && (match config with
           | None -> true
           | Some c -> Obs.Event.config ev = Some c)
      in
      let selected =
        List.mapi (fun i ev -> (i + 1, ev)) events
        |> List.filter (fun (_, ev) -> matches ev)
      in
      if stats then begin
        let counts = Hashtbl.create 16 in
        List.iter
          (fun (_, ev) ->
            let k = Obs.Event.name ev in
            Hashtbl.replace counts k
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
          selected;
        let rows =
          Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts []
          |> List.sort compare
          |> List.map (fun (k, n) -> [ k; string_of_int n ])
        in
        let header = [ "event"; "count" ] in
        let rows =
          rows @ [ [ "total"; string_of_int (List.length selected) ] ]
        in
        if csv then print_string (Report.Table.to_csv ~header rows)
        else print_string (Report.Table.render ~header rows)
      end
      else begin
        let header = [ "#"; "slot"; "event"; "detail" ] in
        let rows =
          List.map
            (fun (i, ev) ->
              [ string_of_int i;
                (match Obs.Event.slot ev with
                | Some s -> string_of_int s
                | None -> "-");
                Obs.Event.name ev;
                Obs.Event.summary ev ])
            selected
        in
        if csv then print_string (Report.Table.to_csv ~header rows)
        else
          print_string
            (Report.Table.render ~header
               ~align:
                 [ Report.Table.Right; Report.Table.Right; Report.Table.Left;
                   Report.Table.Left ]
               rows)
      end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Query an archived JSONL trace: filter by event kind, \
             campaign slot or compiler configuration, and print matching \
             events (or $(b,--stats) counts) as a table or CSV. Output is \
             deterministic for a fixed-seed trace.")
    Term.(const run $ file $ kind $ slot $ config $ stats $ csv)

let cmd_coverage =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"An archived JSONL trace ($(b,campaign --trace)).")
  in
  let by_strategy =
    Arg.(value & flag
         & info [ "by-strategy" ]
             ~doc:"Per-strategy efficiency instead of the cell listing: \
                   novel cells and total hits per generation strategy, \
                   with rates on the simulated clock.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")
  in
  let run file by_strategy csv =
    match Obs.Follow.read_all ~path:file with
    | Error msg ->
      prerr_endline ("llm4fp coverage: " ^ msg);
      exit 1
    | Ok events ->
      (* Rebuild the ledger view from the coverage events alone. A
         Coverage_hit for a cell whose Coverage_novel predates the trace
         (impossible for a complete trace, possible for a truncated one)
         still lists, with unknown provenance. *)
      let tbl = Hashtbl.create 64 in
      let sim_end = ref 0.0 in
      let novel_by = Hashtbl.create 8 in
      let hits_by = Hashtbl.create 8 in
      let count tbl k by =
        Hashtbl.replace tbl k
          (by + Option.value ~default:0 (Hashtbl.find_opt tbl k))
      in
      List.iter
        (fun ev ->
          match ev with
          | Obs.Event.Coverage_novel
              { slot; kind; pair; level; classes; strategy; sim_s; _ } ->
            Hashtbl.replace tbl (kind, pair, level, classes)
              (1, string_of_int slot, Obs.Json.float_repr sim_s, strategy);
            sim_end := Float.max !sim_end sim_s;
            count novel_by strategy 1;
            count hits_by strategy 1
          | Obs.Event.Coverage_hit
              { kind; pair; level; classes; strategy; hits; _ } ->
            let _, slot, sim, disc =
              Option.value
                ~default:(0, "-", "-", "?")
                (Hashtbl.find_opt tbl (kind, pair, level, classes))
            in
            Hashtbl.replace tbl (kind, pair, level, classes)
              (hits, slot, sim, disc);
            count hits_by strategy 1
          | Obs.Event.Slot_finished { sim_s; _ } ->
            sim_end := Float.max !sim_end sim_s
          | Obs.Event.Campaign_finished { sim_seconds; _ } ->
            sim_end := Float.max !sim_end sim_seconds
          | _ -> ())
        events;
      if by_strategy then begin
        let strategies =
          Hashtbl.fold (fun k _ acc -> k :: acc) hits_by []
          |> List.sort_uniq String.compare
        in
        let rate n =
          if !sim_end <= 0.0 then "-"
          else Printf.sprintf "%.6f/s" (float_of_int n /. !sim_end)
        in
        let header = [ "strategy"; "novel"; "hits"; "novel/sim-s";
                       "hits/sim-s" ] in
        let rows =
          List.map
            (fun s ->
              let novel =
                Option.value ~default:0 (Hashtbl.find_opt novel_by s)
              in
              let hits =
                Option.value ~default:0 (Hashtbl.find_opt hits_by s)
              in
              [ s; string_of_int novel; string_of_int hits; rate novel;
                rate hits ])
            strategies
        in
        if csv then print_string (Report.Table.to_csv ~header rows)
        else print_string (Report.Table.render ~header rows)
      end
      else begin
        let header = [ "kind"; "pair"; "level"; "classes"; "hits";
                       "first slot"; "first sim_s"; "strategy" ] in
        let rows =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
          |> List.sort compare
          |> List.map
               (fun ((kind, pair, level, classes), (hits, slot, sim, disc))
               ->
                 [ kind; pair; level; classes; string_of_int hits; slot;
                   sim; disc ])
        in
        if csv then print_string (Report.Table.to_csv ~header rows)
        else print_string (Report.Table.render ~header rows)
      end
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Fold a campaign trace's coverage events into the \
             search-space ledger view: every discovered (kind, pair, \
             level, value-class) cell with hit count and first-discovery \
             provenance, or ($(b,--by-strategy)) per-strategy novelty and \
             discovery rates on the simulated clock. Cell order is \
             deterministic for a fixed-seed trace.")
    Term.(const run $ file $ by_strategy $ csv)

let cmd_stability =
  let seeds =
    Arg.(value & opt (list int) [ 11; 22; 33 ]
         & info [ "seeds" ] ~docv:"S1,S2,..." ~doc:"Seeds to compare.")
  in
  let run budget seeds =
    print_string (Harness.Experiments.seed_stability ~budget ~seeds ())
  in
  Cmd.v
    (Cmd.info "stability"
       ~doc:"Inconsistency rates across several independent seeds")
    Term.(const run
          $ Arg.(value & opt int 200
                 & info [ "b"; "budget" ] ~docv:"N" ~doc:"Budget per campaign.")
          $ seeds)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "llm4fp" ~version:"1.0.0"
             ~doc:"LLM-guided floating-point differential compiler testing \
                   (SC'25 reproduction)")
          [ cmd_generate; cmd_matrix; cmd_campaign; cmd_tables; cmd_profile;
            cmd_explain; cmd_fuzz; cmd_dashboard; cmd_watch; cmd_trace_query;
            cmd_coverage; cmd_corpus; cmd_ablation; cmd_fp32;
            cmd_stability ]))
