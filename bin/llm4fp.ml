(* llm4fp — command-line front end for the LLM4FP reproduction.

   Subcommands:
     generate   print candidate programs from any approach's generator
     matrix     compile & run one program under all 18 configurations
     campaign   run a full campaign for one approach and print statistics
     tables     run all four campaigns and print every paper table/figure
     profile    run a small campaign with span timing and print the profile
     corpus     list or show the mock LLM's kernel corpus
     explain    replay an archived inconsistency case and isolate its cause
     fuzz       run seeded property suites over the framework invariants
     dashboard  render the analytics dashboard from a case archive
     watch      tail a campaign trace and render the live flight deck
     trace      query an archived JSONL trace (filter / stats / CSV) *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 20250704 & info [ "s"; "seed" ] ~docv:"SEED"
         ~doc:"Base random seed (campaigns are deterministic in it).")

let budget_arg =
  Arg.(value & opt int 1000 & info [ "b"; "budget" ] ~docv:"N"
         ~doc:"Number of generated programs per approach (paper: 1000).")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a JSONL event trace of the run to $(docv) (one \
                 event object per line; byte-reproducible for a fixed \
                 seed).")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print the metrics-registry snapshot after the run.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the parallel engine (default 1 = \
                 sequential). Results are identical at any job count; \
                 only wall-clock changes.")

let engine_arg =
  let engine_conv =
    Arg.conv
      ( (fun s ->
          match Compiler.Driver.engine_of_string s with
          | Some e -> Ok e
          | None ->
            Error (`Msg (Printf.sprintf "unknown engine %S (tree | vm)" s))),
        fun fmt e ->
          Format.pp_print_string fmt (Compiler.Driver.engine_name e) )
  in
  Arg.(value & opt (some engine_conv) None
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: $(b,vm) (the flattened run-many VM, \
                 the default) or $(b,tree) (the reference tree-walking \
                 interpreter). Results are bit-identical on either; the \
                 toggle exists for A/B measurement. Also read from \
                 \\$LLM4FP_ENGINE; the flag wins.")

(* Env first (like Exec.Faults.of_env), then the flag overrides. *)
let apply_engine choice =
  (try Compiler.Driver.set_engine_of_env ()
   with Invalid_argument msg ->
     prerr_endline msg;
     exit 1);
  Option.iter Compiler.Driver.set_engine choice

(* Bracket [f] with a JSONL trace sink on [path], when given. *)
let with_trace path f =
  match path with
  | None -> f ()
  | Some path ->
    (* Binary mode: trace bytes are identical across platforms (no
       newline translation), the same fix the recorder got. *)
    let oc =
      try open_out_bin path
      with Sys_error msg ->
        prerr_endline ("cannot open trace file: " ^ msg);
        exit 1
    in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        (* Ordered: the file carries the jobs=1 event sequence at any
           job count (events are sorted by their (slot, lane, seq)
           stamps before they reach the channel). *)
        Obs.Trace.with_sink (Obs.Sink.ordered (Obs.Sink.jsonl oc)) f)

let print_metrics_if requested =
  if requested then begin
    print_newline ();
    print_string (Obs.Metrics.render_table ())
  end

(* Latency percentiles for the dashboard, from the metrics registry.
   Every registered histogram observes modelled (simulated) quantities,
   so these are deterministic in the seed — they may appear in the
   byte-reproducible HTML report. *)
let latency_percentiles () =
  List.filter_map
    (fun (name, v) ->
      match v with
      | Obs.Metrics.Histogram { bounds; counts; count; _ } when count > 0 ->
        let p q = Obs.Metrics.percentile_of ~bounds ~counts q in
        Some
          {
            Report.Analytics.metric = name;
            count;
            p50 = p 0.50;
            p95 = p 0.95;
            p99 = p 0.99;
          }
      | _ -> None)
    (Obs.Metrics.snapshot ())

(* Reports are durable artifacts too: write them atomically so an
   interrupted run never leaves a half-rendered file at the target. *)
let write_file path content =
  try Util.Durable.write_string ~path content with
  | Sys_error msg ->
    prerr_endline ("cannot open output file: " ^ msg);
    exit 1
  | Unix.Unix_error (e, _, _) ->
    prerr_endline ("cannot write output file: " ^ Unix.error_message e);
    exit 1

let approach_arg =
  let parse s =
    match Harness.Approach.of_name s with
    | Some a -> Ok a
    | None ->
      Error (`Msg (Printf.sprintf "unknown approach %S (try varity, \
                                   direct-prompt, grammar-guided, llm4fp, \
                                   bandit)" s))
  in
  let print fmt a = Format.pp_print_string fmt (Harness.Approach.name a) in
  Arg.conv (parse, print)

(* ------------------------------------------------------------------ *)

let cmd_generate =
  let count =
    Arg.(value & opt int 1 & info [ "n" ] ~docv:"COUNT" ~doc:"How many programs.")
  in
  let approach =
    Arg.(value & opt approach_arg Harness.Approach.Llm4fp
         & info [ "a"; "approach" ] ~docv:"APPROACH"
             ~doc:"varity | direct-prompt | grammar-guided | llm4fp")
  in
  let run seed count approach =
    if approach = Harness.Approach.Bandit then begin
      prerr_endline
        "bandit is a campaign-level ensemble, not a generator; pick one of \
         varity, direct-prompt, grammar-guided, llm4fp";
      exit 1
    end;
    let rng = Util.Rng.of_int seed in
    let client = Llm.Client.create ~seed () in
    for k = 1 to count do
      let source =
        match approach with
        | Harness.Approach.Bandit -> assert false
        | Harness.Approach.Varity -> Lang.Pp.to_c (Gen.Varity.generate rng)
        | Harness.Approach.Direct_prompt ->
          (Llm.Client.generate client (Llm.Prompt.Direct { precision = Lang.Ast.F64 }))
            .Llm.Client.source
        | Harness.Approach.Grammar_guided | Harness.Approach.Llm4fp ->
          (Llm.Client.generate client (Llm.Prompt.Grammar { precision = Lang.Ast.F64 }))
            .Llm.Client.source
      in
      if count > 1 then Printf.printf "/* --- program %d --- */\n" k;
      print_string source
    done
  in
  Cmd.v (Cmd.info "generate" ~doc:"Print generated candidate programs")
    Term.(const run $ seed_arg $ count $ approach)

let cmd_matrix =
  let file =
    Arg.(value & opt (some file) None
         & info [ "f"; "file" ] ~docv:"FILE"
             ~doc:"C source of a compute function (default: a fresh \
                   LLM4FP-style program).")
  in
  let run seed file engine =
    apply_engine engine;
    let source =
      match file with
      | Some path ->
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      | None ->
        let client = Llm.Client.create ~seed () in
        (Llm.Client.generate client (Llm.Prompt.Grammar { precision = Lang.Ast.F64 }))
          .Llm.Client.source
    in
    match Cparse.Parse.program source with
    | Error msg -> prerr_endline ("parse error: " ^ msg); exit 1
    | Ok program ->
      (match Analysis.Validate.check program with
       | Error issues ->
         prerr_endline "invalid program:";
         List.iter
           (fun i -> prerr_endline ("  " ^ Analysis.Validate.issue_to_string i))
           issues;
         exit 1
       | Ok () -> ());
      let rng = Util.Rng.of_int (seed lxor 0xF00D) in
      let inputs =
        Gen.Generate.gen_inputs rng Llm.Client.generation_config program
      in
      print_string (Lang.Pp.to_c program);
      Format.printf "@.inputs: %a@.@." Irsim.Inputs.pp inputs;
      let result = Difftest.Run.test program inputs in
      let rows =
        List.map
          (fun (o : Difftest.Run.output) ->
            [ Compiler.Config.name o.Difftest.Run.config;
              o.Difftest.Run.hex;
              Printf.sprintf "%.17g" o.Difftest.Run.value ])
          result.Difftest.Run.outputs
      in
      print_string
        (Report.Table.render ~header:[ "configuration"; "hex"; "value" ]
           ~align:[ Report.Table.Left; Report.Table.Left; Report.Table.Right ]
           rows);
      Printf.printf "\ncross-compiler inconsistencies: %d of %d comparisons\n"
        (Difftest.Run.cross_inconsistencies result)
        (List.length result.Difftest.Run.cross)
  in
  Cmd.v (Cmd.info "matrix" ~doc:"Run one program under every configuration")
    Term.(const run $ seed_arg $ file $ engine_arg)

let cmd_campaign =
  let approach =
    Arg.(value & pos 0 (some approach_arg) None
         & info [] ~docv:"APPROACH"
             ~doc:"Which approach to run (omit with $(b,--bandit)).")
  in
  let bandit =
    Arg.(value & flag
         & info [ "bandit" ]
             ~doc:"Run the bandit-interleaved ensemble: every budget slot \
                   goes to the arm — mutate, varity, direct, grammar, grow \
                   — with the best recent inconsistencies per simulated \
                   second. Equivalent to APPROACH $(b,bandit).")
  in
  let grow_from =
    Arg.(value & opt (some string) None
         & info [ "grow-from" ] ~docv:"DIR"
             ~doc:"Seed the bandit's grow arm with the archived cases in \
                   $(docv) (a $(b,--record) directory from an earlier \
                   campaign). Only meaningful with $(b,--bandit).")
  in
  let fp32 =
    Arg.(value & flag
         & info [ "fp32" ] ~doc:"Generate and test single-precision programs.")
  in
  let record =
    Arg.(value & opt (some string) None
         & info [ "record" ] ~docv:"DIR"
             ~doc:"Flight recorder: archive every first-seen inconsistency \
                   as a replayable case file $(docv)/<fingerprint>.jsonl \
                   (see the $(b,explain) subcommand). Recording changes no \
                   result.")
  in
  let html =
    Arg.(value & opt (some string) None
         & info [ "html" ] ~docv:"FILE"
             ~doc:"Write the campaign analytics dashboard (self-contained \
                   HTML) to $(docv). Requires $(b,--record).")
  in
  let checkpoint_dir =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"DIR"
             ~doc:"Durably snapshot the complete campaign state to \
                   $(docv)/checkpoint.jsonl every $(b,--checkpoint-every) \
                   slots (atomic temp+rename, fsync'd). Checkpointing \
                   changes no result.")
  in
  let checkpoint_every =
    Arg.(value & opt int 25
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Slots between checkpoints (with $(b,--checkpoint); \
                   default 25).")
  in
  let resume =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"DIR"
             ~doc:"Resume an interrupted campaign from \
                   $(docv)/checkpoint.jsonl. The snapshot supplies seed, \
                   budget, precision and (unless $(b,--record) overrides) \
                   the case-archive directory; the positional APPROACH \
                   must match. Checkpointing continues into $(docv) unless \
                   $(b,--checkpoint) redirects it. With $(b,--trace), the \
                   file is truncated to the snapshot's durable offset \
                   first, so the finished trace is byte-identical to an \
                   uninterrupted run's.")
  in
  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"PLAN"
             ~doc:"Deterministic fault-injection plan for recovery \
                   testing, e.g. $(b,llm\\@3:fail,checkpoint\\@2:crash). \
                   Each rule is STAGE\\@HIT:ACTION with STAGE one of llm, \
                   frontend, backend, exec, archive, checkpoint and \
                   ACTION one of crash, fail (transient, retried), \
                   delay=SECONDS. Also read from \\$LLM4FP_FAULTS.")
  in
  let shard =
    Arg.(value & opt (some string) None
         & info [ "shard" ] ~docv:"I/N"
             ~doc:"Run one fleet shard: the chunks of the budget this \
                   shard of $(i,N) owns, each as an independent \
                   mini-campaign under $(b,--out)/chunk-*/ (own trace, \
                   case archive, checkpoint and durable outcome record). \
                   Chunks completed by an earlier run are skipped; an \
                   interrupted chunk resumes from its checkpoint. The \
                   chunk set — and so the merged result — is identical \
                   at every N ($(b,0/1) is the single-process \
                   reference).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"ROOT"
             ~doc:"The fleet root directory (with $(b,--shard)); merge \
                   completed chunks with $(b,llm4fp merge) $(docv).")
  in
  let chunk =
    Arg.(value & opt int Harness.Shard.default_chunk
         & info [ "chunk" ] ~docv:"SLOTS"
             ~doc:"Chunk size in budget slots (with $(b,--shard); \
                   default 25). Part of the partition's identity: \
                   changing it changes results, changing the shard \
                   count never does.")
  in
  let run seed budget approach bandit grow_from fp32 jobs trace metrics record
      html checkpoint_dir checkpoint_every resume faults engine shard out chunk
      =
    apply_engine engine;
    let approach =
      match (approach, bandit) with
      | Some a, false -> a
      | None, true | Some Harness.Approach.Bandit, true ->
        Harness.Approach.Bandit
      | Some a, true ->
        Printf.eprintf
          "llm4fp campaign: --bandit conflicts with APPROACH %s\n"
          (Harness.Approach.name a);
        exit 2
      | None, false ->
        prerr_endline
          "llm4fp campaign: required argument APPROACH is missing (or pass \
           --bandit)";
        exit 2
    in
    if grow_from <> None && approach <> Harness.Approach.Bandit then begin
      prerr_endline
        "llm4fp campaign: --grow-from only applies to --bandit campaigns";
      exit 2
    end;
    if grow_from <> None && shard <> None then begin
      prerr_endline
        "llm4fp campaign: --grow-from is not supported in --shard mode (the \
         fleet's chunks each rebuild their own grow pool from feedback)";
      exit 2
    end;
    (match shard with
    | None -> ()
    | Some spec_text -> begin
      (* Shard mode owns its own trace/archive/checkpoint layout under
         the fleet root; the single-campaign flags would silently
         fight it, so they are rejected up front. Exit 2 with a
         one-line diagnostic, like every other usage error. *)
      match Harness.Shard.parse_spec spec_text with
      | Error msg ->
        Printf.eprintf "llm4fp campaign: %s\n" msg;
        exit 2
      | Ok spec ->
        (match out with
        | Some _ -> ()
        | None ->
          prerr_endline
            "llm4fp campaign: --shard needs --out ROOT (the fleet root \
             directory)";
          exit 2);
        if chunk <= 0 then begin
          prerr_endline "llm4fp campaign: --chunk must be positive";
          exit 2
        end;
        if trace <> None || record <> None || html <> None
           || checkpoint_dir <> None || resume <> None
        then begin
          prerr_endline
            "llm4fp campaign: --shard manages its own trace, archive and \
             checkpoints under --out; drop --trace/--record/--html/\
             --checkpoint/--resume";
          exit 2
        end;
        if checkpoint_every <= 0 then begin
          prerr_endline "--checkpoint-every must be positive";
          exit 2
        end;
        (try Exec.Faults.of_env ()
         with Invalid_argument msg ->
           prerr_endline msg;
           exit 1);
        (match faults with
        | None -> ()
        | Some spec -> begin
          match Exec.Faults.parse spec with
          | Ok plan -> Exec.Faults.arm plan
          | Error msg ->
            prerr_endline ("--faults: " ^ msg);
            exit 1
        end);
        let root = Option.get out in
        Util.Durable.mkdir_p root;
        let precision = if fp32 then Lang.Ast.F32 else Lang.Ast.F64 in
        let on_chunk (o : Harness.Fleet.chunk_outcome)
            (how : Harness.Fleet.chunk_run) =
          Printf.printf "chunk %04d: slots %d..%d, %d inconsistencies, %d \
                         case(s)%s\n%!"
            o.Harness.Fleet.chunk o.Harness.Fleet.first_slot
            (o.Harness.Fleet.first_slot + o.Harness.Fleet.budget - 1)
            (Difftest.Stats.total_inconsistencies o.Harness.Fleet.stats)
            (List.length o.Harness.Fleet.fingerprints)
            (match how with
            | Harness.Fleet.Skipped -> " [already done]"
            | Harness.Fleet.Resumed -> " [resumed]"
            | Harness.Fleet.Fresh -> "")
        in
        match
          Harness.Fleet.run_shard ~chunk ~jobs ~precision
            ~interval:checkpoint_every ~on_chunk ~root ~spec ~budget ~seed
            approach
        with
        | Error msg ->
          prerr_endline ("llm4fp campaign: " ^ msg);
          exit 1
        | Ok outcomes ->
          let sum f =
            List.fold_left (fun acc o -> acc + f o) 0 outcomes
          in
          Printf.printf
            "shard %s: %d chunk(s), %d slots, %d inconsistencies, %d \
             case(s) under %s\n"
            (Harness.Shard.spec_name spec)
            (List.length outcomes)
            (sum (fun o -> o.Harness.Fleet.budget))
            (sum (fun o ->
                 Difftest.Stats.total_inconsistencies o.Harness.Fleet.stats))
            (sum (fun o -> List.length o.Harness.Fleet.fingerprints))
            root;
          print_metrics_if metrics;
          exit 0
    end);
    if out <> None then begin
      prerr_endline "llm4fp campaign: --out only makes sense with --shard";
      exit 2
    end;
    if html <> None && record = None then begin
      prerr_endline "--html needs --record DIR (the dashboard folds the case archive)";
      exit 1
    end;
    if checkpoint_every <= 0 then begin
      prerr_endline "--checkpoint-every must be positive";
      exit 1
    end;
    (try Exec.Faults.of_env ()
     with Invalid_argument msg ->
       prerr_endline msg;
       exit 1);
    (match faults with
    | None -> ()
    | Some spec -> begin
      match Exec.Faults.parse spec with
      | Ok plan -> Exec.Faults.arm plan
      | Error msg ->
        prerr_endline ("--faults: " ^ msg);
        exit 1
    end);
    let snapshot =
      match resume with
      | None -> None
      | Some dir -> begin
        match Checkpoint.load ~dir with
        | Ok snap -> Some (dir, snap)
        | Error msg ->
          prerr_endline ("--resume: " ^ msg);
          exit 1
      end
    in
    (* A checkpoint resumes the campaign it came from: its identity
       fields win over the CLI defaults, and a mismatched approach is an
       error here (with a friendlier message than Campaign.run's). *)
    (match snapshot with
    | Some (_, snap)
      when snap.Checkpoint.approach <> Harness.Approach.name approach ->
      Printf.eprintf "--resume: checkpoint is for approach %s, not %s\n"
        snap.Checkpoint.approach
        (Harness.Approach.name approach);
      exit 1
    | _ -> ());
    let seed, budget, precision =
      match snapshot with
      | None -> (seed, budget, if fp32 then Lang.Ast.F32 else Lang.Ast.F64)
      | Some (_, snap) ->
        ( snap.Checkpoint.seed,
          snap.Checkpoint.budget,
          if snap.Checkpoint.precision = "fp32" then Lang.Ast.F32
          else Lang.Ast.F64 )
    in
    let record =
      match (record, snapshot) with
      | None, Some (_, snap) ->
        Option.map
          (fun rs -> rs.Checkpoint.rec_dir)
          snap.Checkpoint.recorder
      | record, _ -> record
    in
    let recorder = Option.map (fun dir -> Difftest.Recorder.create ~dir) record in
    let checkpoint =
      match (checkpoint_dir, snapshot) with
      | Some dir, _ -> Some (dir, checkpoint_every)
      | None, Some (dir, snap) -> Some (dir, snap.Checkpoint.interval)
      | None, None -> None
    in
    let grow_seeds =
      match grow_from with
      | None -> []
      | Some dir -> begin
        match Reduce.grow_pool ~dir with
        | Ok [] ->
          prerr_endline ("--grow-from: no archived cases in " ^ dir);
          exit 1
        | Ok pool -> pool
        | Error msg ->
          prerr_endline ("--grow-from: " ^ msg);
          exit 1
      end
    in
    let with_campaign_trace f =
      match (trace, snapshot) with
      | Some path, Some (_, snap) ->
        (* Truncate back to the checkpoint's durable offset before the
           sink attaches: events the crashed run flushed beyond the
           boundary are discarded, then re-emitted identically. *)
        let oc =
          try Checkpoint.reopen_trace ~path snap with
          | Unix.Unix_error (e, _, _) ->
            prerr_endline
              ("cannot reopen trace file: " ^ Unix.error_message e);
            exit 1
          | Sys_error msg ->
            prerr_endline ("cannot reopen trace file: " ^ msg);
            exit 1
        in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Obs.Trace.with_sink (Obs.Sink.ordered (Obs.Sink.jsonl oc)) f)
      | _ -> with_trace trace f
    in
    let o =
      with_campaign_trace (fun () ->
          Harness.Campaign.run ~budget ~precision ~jobs ?recorder ?checkpoint
            ?resume:(Option.map snd snapshot) ~grow_seeds ~seed approach)
    in
    let stats = o.Harness.Campaign.stats in
    Printf.printf "%s: budget %d, seed %d\n" (Harness.Approach.name approach)
      budget seed;
    Printf.printf "  inconsistency rate : %s\n"
      (Report.Table.pct (Difftest.Stats.inconsistency_rate stats));
    Printf.printf "  inconsistencies    : %s of %s comparisons\n"
      (Report.Table.commas (Difftest.Stats.total_inconsistencies stats))
      (Report.Table.commas (Difftest.Stats.total_comparisons stats));
    Printf.printf "  valid programs     : %d (%d generation failures)\n"
      (List.length o.Harness.Campaign.programs)
      o.Harness.Campaign.generation_failures;
    Printf.printf "  feedback set       : %d\n" o.Harness.Campaign.successful;
    (match o.Harness.Campaign.bandit with
    | None -> ()
    | Some b ->
      Printf.printf "  bandit arms        : (pulls, incons, sim time, rate)\n";
      List.iter
        (fun (name, pulls, incons, sim_s, rate) ->
          Printf.printf "    %-8s %5d  %6d  %8s  %.4f/s\n" name pulls incons
            (Util.Sim_clock.hms sim_s) rate)
        (Harness.Bandit.table b));
    Printf.printf "  simulated time     : %s (llm %s)\n"
      (Util.Sim_clock.hms o.Harness.Campaign.sim_seconds)
      (Util.Sim_clock.hms o.Harness.Campaign.llm_seconds);
    Printf.printf "  real compute       : %.2fs\n" o.Harness.Campaign.real_seconds;
    (match recorder with
    | None -> ()
    | Some r ->
      Printf.printf "  case archive       : %d new case(s) in %s (%d duplicate hits)\n"
        (Difftest.Recorder.count r) (Difftest.Recorder.dir r)
        (Difftest.Recorder.duplicates r));
    (match (html, record) with
    | Some out, Some dir -> begin
      match Difftest.Recorder.load_dir dir with
      | Error msg ->
        prerr_endline ("cannot load case archive: " ^ msg);
        exit 1
      | Ok cases ->
        let analytics =
          Report.Analytics.build (List.map Difftest.Case.to_analytics cases)
        in
        let title =
          Printf.sprintf "LLM4FP campaign forensics — %s, budget %d, seed %d"
            (Harness.Approach.name approach) budget seed
        in
        write_file out
          (Report.Analytics.render_html ~latencies:(latency_percentiles ())
             ~title analytics);
        Printf.printf "  dashboard          : %s\n" out
    end
    | _ -> ());
    print_metrics_if metrics
  in
  Cmd.v (Cmd.info "campaign" ~doc:"Run one approach's full campaign")
    Term.(const run $ seed_arg $ budget_arg $ approach $ bandit $ grow_from
          $ fp32 $ jobs_arg $ trace_arg $ metrics_arg $ record $ html
          $ checkpoint_dir $ checkpoint_every $ resume $ faults $ engine_arg
          $ shard $ out $ chunk)

let cmd_fleet =
  let approach =
    Arg.(required & pos 0 (some approach_arg) None
         & info [] ~docv:"APPROACH" ~doc:"Which approach to run.")
  in
  let shards =
    Arg.(value & opt int 2
         & info [ "n"; "shards" ] ~docv:"N"
             ~doc:"Worker processes to supervise (default 2). The merged \
                   result is byte-identical at every N.")
  in
  let fp32 =
    Arg.(value & flag
         & info [ "fp32" ] ~doc:"Generate and test single-precision programs.")
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "out" ] ~docv:"ROOT"
             ~doc:"The fleet root directory: per-chunk traces, archives, \
                   checkpoints and outcomes land under \
                   $(docv)/chunk-*/, per-shard process logs at \
                   $(docv)/shard-*.log.")
  in
  let chunk =
    Arg.(value & opt int Harness.Shard.default_chunk
         & info [ "chunk" ] ~docv:"SLOTS"
             ~doc:"Chunk size in budget slots (default 25).")
  in
  let checkpoint_every =
    Arg.(value & opt int 5
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Slots between per-chunk checkpoints in the children \
                   (default 5) — the grain at which a crashed shard \
                   resumes.")
  in
  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"PLAN"
             ~doc:"Fault-injection plan passed to each child's $(i,first) \
                   spawn (e.g. $(b,checkpoint\\@1:crash) for a \
                   crash-and-resume drill). Respawned children run \
                   without it, so an injected crash is hit exactly \
                   once per shard.")
  in
  let max_restarts =
    Arg.(value & opt int 3
         & info [ "max-restarts" ] ~docv:"K"
             ~doc:"Give up on a shard after $(docv) respawns (default 3).")
  in
  let interval =
    Arg.(value & opt float 0.2
         & info [ "interval" ] ~docv:"SECS"
             ~doc:"Supervisor polling interval (default 0.2).")
  in
  let run seed budget approach fp32 jobs shards out chunk checkpoint_every
      faults max_restarts interval engine =
    if shards < 1 then begin
      prerr_endline "llm4fp fleet: -n must be at least 1";
      exit 2
    end;
    if chunk <= 0 then begin
      prerr_endline "llm4fp fleet: --chunk must be positive";
      exit 2
    end;
    if checkpoint_every <= 0 then begin
      prerr_endline "llm4fp fleet: --checkpoint-every must be positive";
      exit 2
    end;
    if interval <= 0.0 then begin
      prerr_endline "llm4fp fleet: --interval must be positive";
      exit 2
    end;
    (* Validate the plan up front (the children re-parse their copy). *)
    (match faults with
    | None -> ()
    | Some spec -> begin
      match Exec.Faults.parse spec with
      | Ok _ -> ()
      | Error msg ->
        prerr_endline ("--faults: " ^ msg);
        exit 1
    end);
    let root = out in
    Util.Durable.mkdir_p root;
    let plan = Harness.Shard.plan ~chunk ~budget ~seed () in
    let slices_of i =
      Harness.Shard.assigned { Harness.Shard.index = i; count = shards } plan
    in
    let log_path i = Filename.concat root (Printf.sprintf "shard-%d.log" i) in
    let child_argv i ~with_faults =
      let args =
        [ Sys.executable_name; "campaign"; Harness.Approach.name approach;
          "--shard"; Printf.sprintf "%d/%d" i shards; "--out"; root;
          "-b"; string_of_int budget; "-s"; string_of_int seed;
          "--chunk"; string_of_int chunk;
          "--checkpoint-every"; string_of_int checkpoint_every;
          "-j"; string_of_int jobs ]
        @ (if fp32 then [ "--fp32" ] else [])
        @ (match engine with
          | Some e -> [ "--engine"; Compiler.Driver.engine_name e ]
          | None -> [])
        @ (match faults with
          | Some f when with_faults -> [ "--faults"; f ]
          | _ -> [])
      in
      Array.of_list args
    in
    let spawn i ~with_faults =
      let log =
        Unix.openfile (log_path i)
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
          0o644
      in
      let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
      Fun.protect
        ~finally:(fun () ->
          Unix.close log;
          Unix.close null)
        (fun () ->
          Unix.create_process Sys.executable_name (child_argv i ~with_faults)
            null log log)
    in
    let state = Array.init shards (fun i -> `Running (spawn i ~with_faults:true)) in
    let restarts = Array.make shards 0 in
    (* One flight-deck fold per chunk trace: the supervisor streams
       every child's JSONL trace through the same follower protocol the
       watch TUI uses, missing files (a chunk not started yet) reading
       as empty batches. *)
    let trace_of slice =
      Harness.Fleet.trace_path
        (Harness.Fleet.chunk_dir ~root slice.Harness.Shard.chunk)
    in
    let follower =
      Obs.Follow.Multi.create ~paths:(List.map trace_of plan)
    in
    let views : (string, Report.Flightdeck.view) Hashtbl.t =
      Hashtbl.create 32
    in
    let tty = Unix.isatty Unix.stdout in
    let poll_traces () =
      match Obs.Follow.Multi.poll follower with
      | Error msg ->
        prerr_endline ("llm4fp fleet: " ^ msg);
        exit 1
      | Ok batches ->
        List.iter
          (fun (path, (b : Obs.Follow.batch)) ->
            let v =
              if b.Obs.Follow.rotated then Report.Flightdeck.empty
              else
                Option.value ~default:Report.Flightdeck.empty
                  (Hashtbl.find_opt views path)
            in
            Hashtbl.replace views path
              (List.fold_left Obs.Deck.apply v b.Obs.Follow.events))
          batches
    in
    let shard_row i =
      let slices = slices_of i in
      let view_of s =
        Option.value ~default:Report.Flightdeck.empty
          (Hashtbl.find_opt views (trace_of s))
      in
      let sum f = List.fold_left (fun acc s -> acc + f s) 0 slices in
      {
        Report.Fleetdeck.shard = i;
        state =
          (match state.(i) with
          | `Running _ -> "running"
          | `Done -> "done"
          | `Failed -> "failed");
        restarts = restarts.(i);
        chunks_done =
          sum (fun s ->
              if
                Sys.file_exists
                  (Harness.Fleet.outcome_path
                     (Harness.Fleet.chunk_dir ~root s.Harness.Shard.chunk))
              then 1
              else 0);
        chunks_total = List.length slices;
        slots_done = sum (fun s -> (view_of s).Report.Flightdeck.slots_done);
        slots_total = sum (fun s -> s.Harness.Shard.budget);
        inconsistencies =
          sum (fun s -> (view_of s).Report.Flightdeck.cross_hits);
      }
    in
    let title =
      Printf.sprintf "llm4fp fleet — %s, budget %d, seed %d, %d shard(s)"
        (Harness.Approach.name approach)
        budget seed shards
    in
    let render () =
      Report.Fleetdeck.render ~title (List.init shards shard_row)
    in
    let rec supervise () =
      Array.iteri
        (fun i st ->
          match st with
          | `Running pid -> begin
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ -> ()
            | _, Unix.WEXITED 0 -> state.(i) <- `Done
            | _, _ ->
              if restarts.(i) < max_restarts then begin
                restarts.(i) <- restarts.(i) + 1;
                Printf.eprintf
                  "llm4fp fleet: shard %d crashed; restarting (%d/%d), \
                   resuming from its chunk checkpoints\n%!"
                  i restarts.(i) max_restarts;
                (* No fault plan on respawn: the drill's crash fires
                   once, then the shard runs clean from its durable
                   state. *)
                state.(i) <- `Running (spawn i ~with_faults:false)
              end
              else begin
                state.(i) <- `Failed;
                Printf.eprintf
                  "llm4fp fleet: shard %d failed after %d restart(s); see \
                   %s\n%!"
                  i restarts.(i) (log_path i)
              end
          end
          | `Done | `Failed -> ())
        state;
      poll_traces ();
      if tty then begin
        print_string ("\027[H\027[2J" ^ render ());
        flush stdout
      end;
      if Array.exists (function `Running _ -> true | _ -> false) state
      then begin
        Unix.sleepf interval;
        supervise ()
      end
    in
    supervise ();
    poll_traces ();
    print_string (if tty then "\027[H\027[2J" ^ render () else render ());
    if Array.exists (( = ) `Failed) state then exit 1;
    Printf.printf "merge with: llm4fp merge %s\n" root
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Supervise a fleet of campaign shard processes: spawn \
             $(b,-n) children running $(b,campaign --shard i/N) over a \
             deterministic chunk partition of the budget, stream their \
             JSONL traces into one aggregated status view, and restart \
             crashed shards — each resumes from its own per-chunk \
             checkpoints, so the finished tree (and the subsequent \
             $(b,merge)) is byte-identical to an uninterrupted run at \
             any shard count.")
    Term.(const run $ seed_arg $ budget_arg $ approach $ fp32 $ jobs_arg
          $ shards $ out $ chunk $ checkpoint_every $ faults
          $ max_restarts $ interval $ engine_arg)

let cmd_merge =
  let root =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ROOT"
             ~doc:"A fleet root directory ($(b,fleet --out) / \
                   $(b,campaign --shard --out)).")
  in
  let html =
    Arg.(value & opt (some string) None
         & info [ "html" ] ~docv:"FILE"
             ~doc:"Write the merged analytics dashboard (self-contained \
                   HTML) to $(docv).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Write the merged artifacts into $(docv): the \
                   deduplicated case archive (loadable by \
                   $(b,dashboard) and $(b,explain)), the folded \
                   stats.json and coverage.json ledgers, and a \
                   merged.json summary. Byte-deterministic: any shard \
                   count yields the identical directory.")
  in
  let title =
    Arg.(value & opt (some string) None
         & info [ "title" ] ~docv:"TITLE"
             ~doc:"Dashboard title (default derives from the fleet \
                   root's contents).")
  in
  let run root html title out =
    match Harness.Fleet.load ~root with
    | Error msg ->
      Printf.eprintf "llm4fp merge: %s\n" msg;
      exit 2
    | Ok m ->
      let stats = m.Harness.Fleet.merged_stats in
      let coverage = m.Harness.Fleet.merged_coverage in
      Printf.printf "merged %d chunk(s) under %s\n"
        (List.length m.Harness.Fleet.chunks)
        root;
      Printf.printf "  budget             : %d slot(s)\n"
        m.Harness.Fleet.total_budget;
      Printf.printf "  inconsistency rate : %s\n"
        (Report.Table.pct (Difftest.Stats.inconsistency_rate stats));
      Printf.printf "  inconsistencies    : %s of %s comparisons\n"
        (Report.Table.commas (Difftest.Stats.total_inconsistencies stats))
        (Report.Table.commas (Difftest.Stats.total_comparisons stats));
      Printf.printf "  valid programs     : %d (%d generation failures)\n"
        (m.Harness.Fleet.total_budget
        - m.Harness.Fleet.total_generation_failures)
        m.Harness.Fleet.total_generation_failures;
      Printf.printf "  feedback set       : %d (summed over chunks)\n"
        m.Harness.Fleet.total_successful;
      Printf.printf "  simulated time     : %s (llm %s)\n"
        (Util.Sim_clock.hms m.Harness.Fleet.total_sim_seconds)
        (Util.Sim_clock.hms m.Harness.Fleet.total_llm_seconds);
      Printf.printf "  case archive       : %d unique case(s)\n"
        (List.length m.Harness.Fleet.cases);
      Printf.printf "  coverage           : %d cell(s), %d hit(s)\n"
        (Obs.Coverage.total_cells coverage)
        (Obs.Coverage.total_hits coverage);
      let title =
        match title with
        | Some t -> t
        | None ->
          Printf.sprintf "LLM4FP fleet merge — %d chunks, budget %d"
            (List.length m.Harness.Fleet.chunks)
            m.Harness.Fleet.total_budget
      in
      (match out with
      | None -> ()
      | Some dir ->
        Harness.Fleet.write_archive ~dir:(Filename.concat dir "cases") m;
        write_file
          (Filename.concat dir "stats.json")
          (Obs.Json.to_string (Difftest.Stats.to_json stats) ^ "\n");
        write_file
          (Filename.concat dir "coverage.json")
          (Obs.Json.to_string (Obs.Coverage.to_json coverage) ^ "\n");
        let inco, comp, succ, genf, sim_s = Harness.Fleet.signature m in
        write_file
          (Filename.concat dir "merged.json")
          (Obs.Json.to_string
             (Obs.Json.Obj
                [ ("schema", Obs.Json.String "llm4fp-merge/1");
                  ( "chunks",
                    Obs.Json.Int (List.length m.Harness.Fleet.chunks) );
                  ("budget", Obs.Json.Int m.Harness.Fleet.total_budget);
                  ("inconsistencies", Obs.Json.Int inco);
                  ("comparisons", Obs.Json.Int comp);
                  ("successful", Obs.Json.Int succ);
                  ("generation_failures", Obs.Json.Int genf);
                  ("sim_seconds", Obs.Json.Float sim_s);
                  ( "cases",
                    Obs.Json.Int (List.length m.Harness.Fleet.cases) ) ])
          ^ "\n");
        Printf.printf "  merged artifacts   : %s\n" dir);
      (match html with
      | None -> ()
      | Some file ->
        let analytics =
          Report.Analytics.build
            (List.map Difftest.Case.to_analytics m.Harness.Fleet.cases)
        in
        write_file file (Report.Analytics.render_html ~title analytics);
        Printf.printf "  dashboard          : %s\n" file)
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:"Merge a fleet root's completed chunks into one combined \
             record: union the case archives (fingerprint dedup), fold \
             the statistics and coverage ledgers in chunk order, and \
             optionally emit the merged archive, ledgers and dashboard. \
             Deterministic: the same chunk set merges to identical \
             bytes regardless of shard count or merge order.")
    Term.(const run $ root $ html $ title $ out)

let cmd_tables =
  let only =
    Arg.(value & opt (some string) None
         & info [ "t"; "table" ] ~docv:"NAME"
             ~doc:"Print only this section (summary, table1, table2, table3, \
                   figure3, table4, table5, table6).")
  in
  let max_pairs =
    Arg.(value & opt int 50_000 & info [ "max-pairs" ] ~docv:"N"
           ~doc:"CodeBLEU pair-sample bound per approach.")
  in
  let csv =
    Arg.(value & flag
         & info [ "csv" ]
             ~doc:"Also write each table as CSV (requires $(b,--out)).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Directory for the CSV files (one <section>.csv per \
                   table).")
  in
  let run seed budget only max_pairs jobs trace metrics csv out engine =
    apply_engine engine;
    if csv && out = None then begin
      prerr_endline "--csv needs --out DIR";
      exit 1
    end;
    let sections =
      with_trace trace (fun () ->
          let suite = Harness.Experiments.run_suite ~budget ~jobs ~seed () in
          Harness.Experiments.sections ~max_pairs ~jobs suite)
    in
    (match only with
    | None ->
      List.iter
        (fun (s : Harness.Experiments.section) ->
          Printf.printf "== %s ==\n%s\n" s.Harness.Experiments.name
            s.Harness.Experiments.text)
        sections
    | Some name -> begin
      match
        List.find_opt
          (fun (s : Harness.Experiments.section) ->
            s.Harness.Experiments.name = name)
          sections
      with
      | Some s -> print_string s.Harness.Experiments.text
      | None ->
        prerr_endline ("unknown section " ^ name);
        exit 1
    end);
    (match (csv, out) with
    | true, Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      List.iter
        (fun (s : Harness.Experiments.section) ->
          match s.Harness.Experiments.csv with
          | None -> ()
          | Some data ->
            let path =
              Filename.concat dir (s.Harness.Experiments.name ^ ".csv")
            in
            write_file path data;
            Printf.eprintf "wrote %s\n" path)
        sections
    | _ -> ());
    print_metrics_if metrics
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:"Run all four campaigns and print every paper table and figure")
    Term.(const run $ seed_arg $ budget_arg $ only $ max_pairs $ jobs_arg
          $ trace_arg $ metrics_arg $ csv $ out $ engine_arg)

let cmd_corpus =
  let kernel_name =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"NAME" ~doc:"Kernel to print (omit to list).")
  in
  let run name =
    match name with
    | None ->
      Array.iter
        (fun (e : Llm.Corpus.entry) ->
          Printf.printf "%-28s %s\n" e.Llm.Corpus.name
            (if e.Llm.Corpus.common then "common" else ""))
        Llm.Corpus.entries
    | Some name -> begin
      match
        Array.find_opt
          (fun (e : Llm.Corpus.entry) -> e.Llm.Corpus.name = name)
          Llm.Corpus.entries
      with
      | Some e -> print_string (String.trim e.Llm.Corpus.source ^ "\n")
      | None ->
        prerr_endline ("no such kernel: " ^ name);
        exit 1
    end
  in
  Cmd.v (Cmd.info "corpus" ~doc:"List or print the mock LLM's kernel corpus")
    Term.(const run $ kernel_name)

let cmd_ablation =
  let run seed budget = print_string (Harness.Ablation.table ~budget ~seed ()) in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Replay one LLM4FP corpus under ablated compiler models")
    Term.(const run $ seed_arg
          $ Arg.(value & opt int 300
                 & info [ "b"; "budget" ] ~docv:"N" ~doc:"Corpus size."))

let cmd_fp32 =
  let run seed budget =
    print_string (Harness.Experiments.precision_comparison ~budget ~seed ())
  in
  Cmd.v
    (Cmd.info "precision"
       ~doc:"Compare FP64 and FP32 campaigns (Varity and LLM4FP)")
    Term.(const run $ seed_arg
          $ Arg.(value & opt int 300
                 & info [ "b"; "budget" ] ~docv:"N" ~doc:"Budget per campaign."))

let cmd_profile =
  let approach =
    Arg.(value & opt approach_arg Harness.Approach.Llm4fp
         & info [ "a"; "approach" ] ~docv:"APPROACH"
             ~doc:"varity | direct-prompt | grammar-guided | llm4fp")
  in
  let budget =
    Arg.(value & opt int 100
         & info [ "b"; "budget" ] ~docv:"N"
             ~doc:"Campaign size for the profiling run.")
  in
  let flame =
    Arg.(value & opt (some string) None
         & info [ "flame" ] ~docv:"FILE"
             ~doc:"Also export the span tree as Chrome trace-event JSON \
                   to $(docv) (loadable in chrome://tracing or Perfetto).")
  in
  let run seed budget approach jobs trace metrics flame engine =
    apply_engine engine;
    Obs.Span.set_enabled true;
    let o =
      with_trace trace (fun () ->
          Harness.Campaign.run ~budget ~jobs ~seed approach)
    in
    Printf.printf
      "%s: budget %d, seed %d — %s inconsistencies, real compute %.2fs\n\n"
      (Harness.Approach.name approach)
      budget seed
      (Report.Table.commas
         (Difftest.Stats.total_inconsistencies o.Harness.Campaign.stats))
      o.Harness.Campaign.real_seconds;
    print_string (Obs.Span.render ());
    print_newline ();
    print_string (Obs.Span.render_tree ());
    print_newline ();
    print_string (Obs.Metrics.render_percentiles ());
    (match flame with
    | None -> ()
    | Some out ->
      write_file out (Obs.Json.to_string (Obs.Span.flame ()) ^ "\n");
      Printf.eprintf "wrote %s\n" out);
    print_metrics_if metrics
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run a small campaign with span timing enabled and print the \
             per-stage hot-path profile (flat and as a call tree), \
             optionally exporting a flamegraph ($(b,--flame))")
    Term.(const run $ seed_arg $ budget $ approach $ jobs_arg $ trace_arg
          $ metrics_arg $ flame $ engine_arg)

let cmd_explain =
  let case_ref =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"CASE"
             ~doc:"An archive file path, or a bare fingerprint resolved \
                   against $(b,--archive).")
  in
  let archive =
    Arg.(value & opt (some string) None
         & info [ "archive" ] ~docv:"DIR"
             ~doc:"The case-archive directory a bare fingerprint is \
                   looked up in (as written by $(b,campaign --record)).")
  in
  let reduce =
    Arg.(value & flag
         & info [ "reduce" ]
             ~doc:"Also minimize the case with the delta-debugging reducer \
                   and write the reduced replayable record next to the \
                   archived one ($(i,FP).min.jsonl).")
  in
  let run case_ref archive reduce metrics =
    (match archive with
    | Some dir when not (Sys.file_exists dir && Sys.is_directory dir) ->
      Printf.eprintf
        "llm4fp explain: no case archive at %s (create one with \
         'campaign --record %s')\n"
        dir dir;
      exit 2
    | Some dir
      when Array.for_all
             (fun f -> not (Filename.check_suffix f ".jsonl"))
             (Sys.readdir dir) ->
      Printf.eprintf
        "llm4fp explain: case archive %s is empty (no *.jsonl case files)\n"
        dir;
      exit 2
    | _ -> ());
    Obs.Span.set_enabled true;
    match Forensics.Explain.load ?dir:archive case_ref with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok case -> begin
      match Forensics.Explain.replay ~reduce case with
      | Error msg ->
        prerr_endline ("replay failed: " ^ msg);
        exit 1
      | Ok outcome ->
        print_string (Forensics.Explain.render outcome);
        (match outcome.Forensics.Explain.reduction with
        | Some (Ok r) ->
          (* the companion lands where the case lives: the directory of
             the given path, or the --archive directory *)
          let dir =
            if Sys.file_exists case_ref && not (Sys.is_directory case_ref)
            then Filename.dirname case_ref
            else Option.value archive ~default:"."
          in
          let path =
            Difftest.Recorder.write_minimized ~dir
              ~fingerprint:(Difftest.Case.fingerprint case)
              r.Reduce.reduced
          in
          Printf.eprintf "wrote %s\n" path
        | Some (Error _) | None -> ());
        print_newline ();
        print_string (Obs.Span.render ());
        print_metrics_if metrics;
        if not outcome.Forensics.Explain.reproduced then exit 1
    end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Replay an archived inconsistency case bit-for-bit, isolate \
             its root cause (minimal strict-statement set or runtime \
             divergence), and optionally emit a minimized replayable case \
             ($(b,--reduce))")
    Term.(const run $ case_ref $ archive $ reduce $ metrics_arg)

let cmd_fuzz =
  let iters =
    Arg.(value & opt (some int) None
         & info [ "n"; "iters" ] ~docv:"N"
             ~doc:"Cases per property (default: $(b,LLM4FP_PROP_ITERS) when \
                   set, else 60).")
  in
  let suite =
    Arg.(value & opt (some string) None
         & info [ "suite" ] ~docv:"NAME"
             ~doc:"Run only this property suite (see $(b,--list)).")
  in
  let replay =
    Arg.(value & opt (some int64) None
         & info [ "replay" ] ~docv:"SEED"
             ~doc:"Re-check the single case generated from $(docv) — the \
                   seed a failed property printed. Requires $(b,--suite).")
  in
  let list_only =
    Arg.(value & flag
         & info [ "list" ] ~doc:"List the property suites and exit.")
  in
  let run seed iters suite replay list_only metrics =
    if list_only then
      List.iter
        (fun s -> Printf.printf "%-22s %s\n" s.Prop.Suites.name s.Prop.Suites.doc)
        Prop.Suites.all
    else begin
      let report r =
        match r.Prop.Suites.failure with
        | None ->
          Printf.printf "PASS  %-22s (%d cases)\n" r.Prop.Suites.suite
            r.Prop.Suites.iterations;
          true
        | Some msg ->
          Printf.printf "FAIL  %-22s\n%s\n" r.Prop.Suites.suite msg;
          false
      in
      let ok =
        match replay with
        | Some case_seed -> begin
          match suite with
          | None ->
            prerr_endline "--replay requires --suite";
            exit 2
          | Some name -> begin
            match Prop.Suites.find name with
            | None ->
              Printf.eprintf "unknown suite %s (try --list)\n" name;
              exit 2
            | Some s -> report (s.Prop.Suites.replay case_seed)
          end
        end
        | None ->
          let suites =
            match suite with
            | None -> Prop.Suites.all
            | Some name -> begin
              match Prop.Suites.find name with
              | Some s -> [ s ]
              | None ->
                Printf.eprintf "unknown suite %s (try --list)\n" name;
                exit 2
            end
          in
          List.fold_left
            (fun ok s ->
              let r =
                s.Prop.Suites.run ?count:iters ~seed:(Int64.of_int seed) ()
              in
              report r && ok)
            true suites
      in
      print_metrics_if metrics;
      if not ok then exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Run the seeded property suites over the framework's own \
             invariants (generator validity, pass semantics preservation, \
             codec fixpoints, EFT identities). A failed property prints \
             the seed that deterministically replays its shrunk \
             counterexample.")
    Term.(const run $ seed_arg $ iters $ suite $ replay $ list_only
          $ metrics_arg)

let cmd_dashboard =
  let archive =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR" ~doc:"The case-archive directory to analyze.")
  in
  let html =
    Arg.(value & opt (some string) None
         & info [ "html" ] ~docv:"FILE"
             ~doc:"Also write the dashboard as self-contained HTML.")
  in
  let title =
    Arg.(value & opt string "LLM4FP campaign forensics"
         & info [ "title" ] ~docv:"TITLE" ~doc:"Report title.")
  in
  let run archive html title =
    if not (Sys.file_exists archive && Sys.is_directory archive) then begin
      Printf.eprintf
        "llm4fp dashboard: no case archive at %s (create one with \
         'campaign --record %s')\n"
        archive archive;
      exit 2
    end;
    match Difftest.Recorder.load_dir archive with
    | Error msg ->
      prerr_endline ("cannot load case archive: " ^ msg);
      exit 1
    | Ok [] ->
      Printf.eprintf
        "llm4fp dashboard: case archive %s is empty (no *.jsonl case \
         files — the recorded campaign found no inconsistencies?)\n"
        archive;
      exit 2
    | Ok cases ->
      let analytics =
        Report.Analytics.build (List.map Difftest.Case.to_analytics cases)
      in
      print_string (Report.Analytics.render_tty ~title analytics);
      (match html with
      | None -> ()
      | Some out ->
        write_file out (Report.Analytics.render_html ~title analytics);
        Printf.eprintf "wrote %s\n" out)
  in
  Cmd.v
    (Cmd.info "dashboard"
       ~doc:"Fold a case archive into per-pair / per-level / per-class \
             breakdown tables (TTY summary and optional HTML report)")
    Term.(const run $ archive $ html $ title)

let cmd_watch =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"TRACE"
             ~doc:"The JSONL trace file a campaign is writing \
                   ($(b,campaign --trace)); it need not exist yet.")
  in
  let replay =
    Arg.(value & flag
         & info [ "replay" ]
             ~doc:"Fold the completed trace in one pass and print a single \
                   final frame. Deterministic: a fixed-seed trace replays \
                   to a byte-identical frame.")
  in
  let interval =
    Arg.(value & opt float 0.5
         & info [ "interval" ] ~docv:"SECS"
             ~doc:"Polling interval in live mode (default 0.5).")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECS"
             ~doc:"Give up if the campaign has not finished after $(docv) \
                   of watching (exit 3). Default: watch until it does.")
  in
  let run file replay interval timeout =
    if replay then begin
      match Obs.Follow.read_all ~path:file with
      | Error msg ->
        prerr_endline ("llm4fp watch: " ^ msg);
        exit 1
      | Ok events ->
        print_string (Report.Flightdeck.render (Obs.Deck.of_events events))
    end
    else begin
      if interval <= 0.0 then begin
        prerr_endline "--interval must be positive";
        exit 1
      end;
      let follower = Obs.Follow.create ~path:file in
      let view = ref Report.Flightdeck.empty in
      let t0 = Unix.gettimeofday () in
      (* On a TTY each frame repaints in place; piped output gets one
         frame per batch, newline-separated (still parseable). *)
      let clear =
        if Unix.isatty Unix.stdout then "\027[H\027[2J" else ""
      in
      let rec loop () =
        match Obs.Follow.poll follower with
        | Error msg ->
          prerr_endline ("llm4fp watch: " ^ msg);
          exit 1
        | Ok batch ->
          if batch.Obs.Follow.rotated then view := Report.Flightdeck.empty;
          if batch.Obs.Follow.events <> [] then begin
            view :=
              List.fold_left Obs.Deck.apply !view batch.Obs.Follow.events;
            print_string (clear ^ Report.Flightdeck.render !view);
            flush stdout
          end;
          if not (!view).Report.Flightdeck.finished then begin
            (match timeout with
            | Some limit when Unix.gettimeofday () -. t0 > limit ->
              Printf.eprintf
                "llm4fp watch: campaign not finished after %gs\n" limit;
              exit 3
            | _ -> ());
            Unix.sleepf interval;
            loop ()
          end
      in
      loop ()
    end
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Tail a campaign's JSONL trace and render the live flight \
             deck: per-phase throughput, outcome and strategy-arm counts, \
             inconsistency hits by pair and level, latency sparkline and \
             budget ETA — all on the deterministic simulated clock. \
             Watching is purely observational: the campaign's results, \
             trace and archives are byte-identical with or without a \
             watcher attached.")
    Term.(const run $ file $ replay $ interval $ timeout)

let cmd_trace_query =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"An archived JSONL trace ($(b,campaign --trace)).")
  in
  let kind =
    Arg.(value & opt (some string) None
         & info [ "kind" ] ~docv:"KIND"
             ~doc:"Only events of this kind (snake_case tag, e.g. \
                   $(b,inconsistency_found), $(b,slot_finished)).")
  in
  let slot =
    Arg.(value & opt (some int) None
         & info [ "slot" ] ~docv:"N"
             ~doc:"Only events carrying campaign slot $(docv).")
  in
  let config =
    Arg.(value & opt (some string) None
         & info [ "config" ] ~docv:"NAME"
             ~doc:"Only compile/execute events for this compiler \
                   configuration.")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print per-kind counts for the selection instead of the \
                   event rows.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")
  in
  let run file kind slot config stats csv =
    match Obs.Follow.read_all ~path:file with
    | Error msg ->
      prerr_endline ("llm4fp trace: " ^ msg);
      exit 1
    | Ok events ->
      let matches ev =
        (match kind with None -> true | Some k -> Obs.Event.name ev = k)
        && (match slot with
           | None -> true
           | Some s -> Obs.Event.slot ev = Some s)
        && (match config with
           | None -> true
           | Some c -> Obs.Event.config ev = Some c)
      in
      let selected =
        List.mapi (fun i ev -> (i + 1, ev)) events
        |> List.filter (fun (_, ev) -> matches ev)
      in
      if stats then begin
        let counts = Hashtbl.create 16 in
        List.iter
          (fun (_, ev) ->
            let k = Obs.Event.name ev in
            Hashtbl.replace counts k
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
          selected;
        let rows =
          Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts []
          |> List.sort compare
          |> List.map (fun (k, n) -> [ k; string_of_int n ])
        in
        let header = [ "event"; "count" ] in
        let rows =
          rows @ [ [ "total"; string_of_int (List.length selected) ] ]
        in
        if csv then print_string (Report.Table.to_csv ~header rows)
        else print_string (Report.Table.render ~header rows)
      end
      else begin
        let header = [ "#"; "slot"; "event"; "detail" ] in
        let rows =
          List.map
            (fun (i, ev) ->
              [ string_of_int i;
                (match Obs.Event.slot ev with
                | Some s -> string_of_int s
                | None -> "-");
                Obs.Event.name ev;
                Obs.Event.summary ev ])
            selected
        in
        if csv then print_string (Report.Table.to_csv ~header rows)
        else
          print_string
            (Report.Table.render ~header
               ~align:
                 [ Report.Table.Right; Report.Table.Right; Report.Table.Left;
                   Report.Table.Left ]
               rows)
      end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Query an archived JSONL trace: filter by event kind, \
             campaign slot or compiler configuration, and print matching \
             events (or $(b,--stats) counts) as a table or CSV. Output is \
             deterministic for a fixed-seed trace.")
    Term.(const run $ file $ kind $ slot $ config $ stats $ csv)

let cmd_coverage =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"An archived JSONL trace ($(b,campaign --trace)).")
  in
  let by_strategy =
    Arg.(value & flag
         & info [ "by-strategy" ]
             ~doc:"Per-strategy efficiency instead of the cell listing: \
                   novel cells and total hits per generation strategy, \
                   with rates on the simulated clock.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")
  in
  let run file by_strategy csv =
    match Obs.Follow.read_all ~path:file with
    | Error msg ->
      prerr_endline ("llm4fp coverage: " ^ msg);
      exit 1
    | Ok events ->
      (* Rebuild the ledger view from the coverage events alone. A
         Coverage_hit for a cell whose Coverage_novel predates the trace
         (impossible for a complete trace, possible for a truncated one)
         still lists, with unknown provenance. *)
      let tbl = Hashtbl.create 64 in
      let sim_end = ref 0.0 in
      let novel_by = Hashtbl.create 8 in
      let hits_by = Hashtbl.create 8 in
      let count tbl k by =
        Hashtbl.replace tbl k
          (by + Option.value ~default:0 (Hashtbl.find_opt tbl k))
      in
      List.iter
        (fun ev ->
          match ev with
          | Obs.Event.Coverage_novel
              { slot; kind; pair; level; classes; strategy; sim_s; _ } ->
            Hashtbl.replace tbl (kind, pair, level, classes)
              (1, string_of_int slot, Obs.Json.float_repr sim_s, strategy);
            sim_end := Float.max !sim_end sim_s;
            count novel_by strategy 1;
            count hits_by strategy 1
          | Obs.Event.Coverage_hit
              { kind; pair; level; classes; strategy; hits; _ } ->
            let _, slot, sim, disc =
              Option.value
                ~default:(0, "-", "-", "?")
                (Hashtbl.find_opt tbl (kind, pair, level, classes))
            in
            Hashtbl.replace tbl (kind, pair, level, classes)
              (hits, slot, sim, disc);
            count hits_by strategy 1
          | Obs.Event.Slot_finished { sim_s; _ } ->
            sim_end := Float.max !sim_end sim_s
          | Obs.Event.Campaign_finished { sim_seconds; _ } ->
            sim_end := Float.max !sim_end sim_seconds
          | _ -> ())
        events;
      if by_strategy then begin
        let strategies =
          Hashtbl.fold (fun k _ acc -> k :: acc) hits_by []
          |> List.sort_uniq String.compare
        in
        let rate n =
          if !sim_end <= 0.0 then "-"
          else Printf.sprintf "%.6f/s" (float_of_int n /. !sim_end)
        in
        let header = [ "strategy"; "novel"; "hits"; "novel/sim-s";
                       "hits/sim-s" ] in
        let rows =
          List.map
            (fun s ->
              let novel =
                Option.value ~default:0 (Hashtbl.find_opt novel_by s)
              in
              let hits =
                Option.value ~default:0 (Hashtbl.find_opt hits_by s)
              in
              [ s; string_of_int novel; string_of_int hits; rate novel;
                rate hits ])
            strategies
        in
        if csv then print_string (Report.Table.to_csv ~header rows)
        else print_string (Report.Table.render ~header rows)
      end
      else begin
        let header = [ "kind"; "pair"; "level"; "classes"; "hits";
                       "first slot"; "first sim_s"; "strategy" ] in
        let rows =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
          |> List.sort compare
          |> List.map
               (fun ((kind, pair, level, classes), (hits, slot, sim, disc))
               ->
                 [ kind; pair; level; classes; string_of_int hits; slot;
                   sim; disc ])
        in
        if csv then print_string (Report.Table.to_csv ~header rows)
        else print_string (Report.Table.render ~header rows)
      end
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Fold a campaign trace's coverage events into the \
             search-space ledger view: every discovered (kind, pair, \
             level, value-class) cell with hit count and first-discovery \
             provenance, or ($(b,--by-strategy)) per-strategy novelty and \
             discovery rates on the simulated clock. Cell order is \
             deterministic for a fixed-seed trace.")
    Term.(const run $ file $ by_strategy $ csv)

let cmd_stability =
  let seeds =
    Arg.(value & opt (list int) [ 11; 22; 33 ]
         & info [ "seeds" ] ~docv:"S1,S2,..." ~doc:"Seeds to compare.")
  in
  let run budget seeds =
    print_string (Harness.Experiments.seed_stability ~budget ~seeds ())
  in
  Cmd.v
    (Cmd.info "stability"
       ~doc:"Inconsistency rates across several independent seeds")
    Term.(const run
          $ Arg.(value & opt int 200
                 & info [ "b"; "budget" ] ~docv:"N" ~doc:"Budget per campaign.")
          $ seeds)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "llm4fp" ~version:"1.0.0"
             ~doc:"LLM-guided floating-point differential compiler testing \
                   (SC'25 reproduction)")
          [ cmd_generate; cmd_matrix; cmd_campaign; cmd_fleet; cmd_merge;
            cmd_tables; cmd_profile; cmd_explain; cmd_fuzz; cmd_dashboard;
            cmd_watch; cmd_trace_query; cmd_coverage; cmd_corpus;
            cmd_ablation; cmd_fp32; cmd_stability ]))
